#include "src/netmsg/netmsgserver.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/net/page_service.h"
#include "src/vm/imag_protocol.h"

namespace accent {

std::uint64_t NetMsgFragmentCount(const CostTable& costs, ByteCount wire_bytes) {
  const ByteCount frag_payload = costs.netmsg_fragment_bytes;
  return std::max<std::uint64_t>(1, (wire_bytes + frag_payload - 1) / frag_payload);
}

SimDuration NetMsgDeliveryCost(const CostTable& costs, std::uint64_t fragments,
                               ByteCount bytes) {
  return costs.netmsg_per_message +
         costs.netmsg_per_fragment * static_cast<std::int64_t>(fragments) +
         costs.netmsg_per_byte * static_cast<std::int64_t>(bytes);
}

void NetMsgDirectory::Register(HostId host, NetMsgServer* server) {
  ACCENT_EXPECTS(server != nullptr);
  ACCENT_EXPECTS(servers_.count(host.value) == 0) << " duplicate NetMsgServer on " << host;
  servers_[host.value] = server;
}

NetMsgServer* NetMsgDirectory::Find(HostId host) const {
  auto it = servers_.find(host.value);
  return it == servers_.end() ? nullptr : it->second;
}

NetMsgServer::NetMsgServer(HostId host, Simulator* sim, const CostTable* costs,
                           IpcFabric* fabric, Network* network, SegmentTable* segments,
                           NetMsgDirectory* directory)
    : host_(host),
      sim_(*sim),
      costs_(*costs),
      fabric_(*fabric),
      network_(*network),
      directory_(*directory),
      backer_(host, sim, costs, fabric, segments, CpuWork::kNetMsgServer, "netmsg") {
  ACCENT_EXPECTS(network != nullptr && directory != nullptr);
}

void NetMsgServer::Start() {
  backer_.Start();
  directory_.Register(host_, this);
  fabric_.SetTransport(host_, this);
}

IouRef NetMsgServer::AdoptPages(std::vector<std::pair<PageIndex, PageRef>> pages,
                                const std::string& name, ProcId owner) {
  ACCENT_EXPECTS(!pages.empty());
  ++cached_objects_;
  // Migration cache objects are indexed by virtual address, so the object
  // spans the whole 4 GB space; only the adopted pages consume storage.
  IouRef iou = backer_.BackSparsePages(kAddressSpaceLimit, std::move(pages), name);
  iou.migration_cache = true;
  if (owner.valid()) {
    cache_objects_by_proc_[owner.value].push_back(iou);
  }
  return iou;
}

std::vector<PageHashEntry> NetMsgServer::PublishIouPages(
    const std::vector<std::pair<PageIndex, PageRef>>& pages, Addr lo) {
  if (page_service_ == nullptr) {
    return {};
  }
  const PageIndex first = PageOf(lo);
  std::vector<PageHashEntry> rider;
  rider.reserve(pages.size());
  for (const auto& [page, payload] : pages) {
    rider.push_back({page - first, page_service_->Publish(payload, sim_.Now())});
  }
  std::sort(rider.begin(), rider.end(),
            [](const PageHashEntry& a, const PageHashEntry& b) { return a.slot < b.slot; });
  return rider;
}

std::vector<IouRef> NetMsgServer::TakeCacheObjectsFor(ProcId owner) {
  auto it = cache_objects_by_proc_.find(owner.value);
  if (it == cache_objects_by_proc_.end()) {
    return {};
  }
  std::vector<IouRef> objects = std::move(it->second);
  cache_objects_by_proc_.erase(it);
  // Drop objects the backer already retired (the process died or its
  // references were balanced before any re-migration).
  std::vector<IouRef> live;
  for (const IouRef& iou : objects) {
    if (backer_.Owns(iou.segment)) {
      live.push_back(iou);
    }
  }
  return live;
}

bool NetMsgServer::EligibleForSubstitution(const Message& msg) {
  if (msg.no_ious) {
    return false;
  }
  switch (msg.op) {
    case MsgOp::kUser:
    case MsgOp::kMigrateRimas:
      break;
    default:
      return false;  // protocol replies and control traffic ship as-is
  }
  for (const MemoryRegion& region : msg.regions) {
    if (region.mem_class == MemClass::kReal) {
      return true;
    }
  }
  return false;
}

bool NetMsgServer::SubstituteIous(Message* msg) {
  if (!iou_caching_ || !EligibleForSubstitution(*msg)) {
    return false;
  }

  std::vector<std::pair<PageIndex, PageRef>> cached;
  Addr lo = kAddressSpaceLimit;
  Addr hi = 0;
  std::vector<MemoryRegion> kept;
  for (MemoryRegion& region : msg->regions) {
    if (region.mem_class != MemClass::kReal) {
      kept.push_back(std::move(region));
      continue;
    }
    lo = std::min(lo, region.base);
    hi = std::max(hi, region.base + region.size);
    ++stats_.regions_cached;
    stats_.bytes_cached += region.size;
    for (PageIndex i = 0; i < region.page_count(); ++i) {
      cached.emplace_back(PageOf(region.base) + i, std::move(region.pages[i]));
    }
  }
  ACCENT_CHECK(!cached.empty());

  std::vector<PageHashEntry> rider = PublishIouPages(cached, lo);
  IouRef iou = AdoptPages(std::move(cached), "iou-cache", msg->cache_owner);
  // One consolidated IOU spans the cached ranges; receivers needing the
  // precise layout intersect it with the AMap from the Core message. The
  // cache object is VA-indexed and region offsets are base-relative, so the
  // IOU is anchored at the span's base.
  iou.offset = lo;
  MemoryRegion iou_region = MemoryRegion::Iou(lo, hi - lo, iou);
  iou_region.page_hashes = std::move(rider);
  kept.push_back(std::move(iou_region));
  msg->regions = std::move(kept);
  return true;
}

void NetMsgServer::ForwardToRemote(HostId dest_host, Message msg) {
  ACCENT_EXPECTS(dest_host != host_);
  NetMsgServer* peer = directory_.Find(dest_host);
  ACCENT_CHECK(peer != nullptr) << " no NetMsgServer on " << dest_host;

  const bool iou_substituted = SubstituteIous(&msg);
  ++stats_.messages_forwarded;

  const ByteCount wire = msg.WireSize(costs_);
  const ByteCount frag_payload = costs_.netmsg_fragment_bytes;
  const std::uint64_t fragments = NetMsgFragmentCount(costs_, wire);

  if (Tracer* tracer = sim_.tracer()) {
    tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:forward", sim_.Now(),
                    {{"op", Json(MsgOpName(msg.op))},
                     {"dest", Json(dest_host.value)},
                     {"wire_bytes", Json(wire)},
                     {"fragments", Json(fragments)},
                     {"iou_substituted", Json(iou_substituted)},
                     {"reliable", Json(reliable_)}});
  }

  Cpu* cpu = fabric_.CpuOf(host_);
  const CpuPriority priority =
      costs_.fault_priority_lane && msg.traffic == TrafficKind::kFaultData
          ? CpuPriority::kHigh
          : CpuPriority::kNormal;
  // Per-message protocol work happens once, up front.
  cpu->Submit(CpuWork::kNetMsgServer, costs_.netmsg_per_message, nullptr, priority);

  if (reliable_) {
    ForwardReliable(peer, std::move(msg), priority);
    return;
  }

  struct Shipment {
    Message msg;
    HostId dest;
  };
  auto shipment = std::make_shared<Shipment>(Shipment{std::move(msg), dest_host});
  // Transfer ids are disambiguated by sender so reassembly state at the
  // receiver never collides across peers.
  const std::uint64_t transfer = (host_.value << 48) | next_transfer_id_++;

  ByteCount remaining = wire;
  for (std::uint64_t i = 0; i < fragments; ++i) {
    const ByteCount bytes = std::min<ByteCount>(frag_payload, remaining);
    remaining -= bytes;
    const bool final_fragment = (i + 1 == fragments);
    ++stats_.fragments_sent;

    const SimDuration handle =
        costs_.netmsg_per_fragment + costs_.netmsg_per_byte * static_cast<std::int64_t>(bytes);
    cpu->Submit(CpuWork::kNetMsgServer, handle,
                [this, peer, shipment, transfer, bytes, final_fragment]() {
                  const TrafficKind kind = shipment->msg.traffic;
                  if (Tracer* tracer = sim_.tracer();
                      tracer != nullptr && tracer->verbose()) {
                    tracer->Instant(host_, TraceLane::kNetMsg,
                                    "netmsg:frag-send", sim_.Now(),
                                    {{"transfer", Json(transfer)},
                                     {"bytes", Json(bytes)}});
                  }
                  network_.Transmit(host_, shipment->dest, bytes, kind,
                                    [peer, shipment, transfer, bytes, final_fragment]() {
                                      Message payload;
                                      if (final_fragment) {
                                        payload = std::move(shipment->msg);
                                      }
                                      peer->OnFragmentArrived(transfer, bytes, final_fragment,
                                                              std::move(payload));
                                    });
                },
                priority);
  }
}

void NetMsgServer::OnFragmentArrived(std::uint64_t transfer, ByteCount bytes,
                                     bool final_fragment, Message msg) {
  ++stats_.fragments_received;
  Reassembly& assembly = reassembly_[transfer];
  assembly.bytes += bytes;
  ++assembly.fragments;
  if (!final_fragment) {
    return;
  }

  if (Tracer* tracer = sim_.tracer()) {
    tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:delivered", sim_.Now(),
                    {{"transfer", Json(transfer)},
                     {"bytes", Json(assembly.bytes)},
                     {"fragments", Json(assembly.fragments)}});
  }

  // The whole message has arrived: charge this node's handling in one piece
  // and deliver.
  const SimDuration handle =
      NetMsgDeliveryCost(costs_, assembly.fragments, assembly.bytes);
  reassembly_.erase(transfer);
  ++stats_.messages_delivered;
  const CpuPriority priority =
      costs_.fault_priority_lane && msg.traffic == TrafficKind::kFaultData
          ? CpuPriority::kHigh
          : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(CpuWork::kNetMsgServer, handle,
                               [this, msg = std::move(msg)]() mutable {
                                 fabric_.DeliverAt(host_, std::move(msg));
                               },
                               priority);
}

// --- reliable transport ----------------------------------------------------

void NetMsgServer::ForwardReliable(NetMsgServer* peer, Message msg, CpuPriority priority) {
  const ByteCount wire = msg.WireSize(costs_);
  const ByteCount frag_payload = costs_.netmsg_fragment_bytes;
  const std::uint64_t fragments = NetMsgFragmentCount(costs_, wire);

  auto transfer = std::make_shared<OutboundTransfer>();
  transfer->kind = msg.traffic;
  transfer->msg = std::move(msg);
  transfer->dest = peer->host();
  transfer->transfer = (host_.value << 48) | next_transfer_id_++;
  transfer->priority = priority;
  ByteCount remaining = wire;
  for (std::uint64_t i = 0; i < fragments; ++i) {
    const ByteCount bytes = std::min<ByteCount>(frag_payload, remaining);
    remaining -= bytes;
    transfer->frag_bytes.push_back(bytes);
  }
  transfer->acked.assign(fragments, false);
  transfer->retries.assign(fragments, 0);
  outbound_[transfer->transfer] = transfer;

  for (std::size_t i = 0; i < fragments; ++i) {
    SendFragment(peer, transfer, i, /*retransmit=*/false);
  }
}

void NetMsgServer::SendFragment(NetMsgServer* peer, std::shared_ptr<OutboundTransfer> transfer,
                                std::size_t index, bool retransmit) {
  const ByteCount bytes = transfer->frag_bytes[index];
  ++stats_.fragments_sent;
  if (retransmit) {
    ++stats_.fragments_retransmitted;
    stats_.retransmit_bytes += bytes;
  }
  if (Tracer* tracer = sim_.tracer();
      tracer != nullptr && (retransmit || tracer->verbose())) {
    tracer->Instant(host_, TraceLane::kNetMsg,
                    retransmit ? "netmsg:retransmit" : "netmsg:frag-send",
                    sim_.Now(),
                    {{"transfer", Json(transfer->transfer)},
                     {"index", Json(static_cast<std::uint64_t>(index))},
                     {"bytes", Json(bytes)},
                     {"retry", Json(transfer->retries[index])}});
  }
  const SimDuration handle =
      costs_.netmsg_per_fragment + costs_.netmsg_per_byte * static_cast<std::int64_t>(bytes);
  fabric_.CpuOf(host_)->Submit(
      CpuWork::kNetMsgServer, handle,
      [this, peer, transfer, index, bytes]() {
        if (transfer->dead || transfer->acked[index]) {
          return;  // acked (or abandoned) while queued on the CPU
        }
        network_.Transmit(host_, transfer->dest, bytes, transfer->kind,
                          [this, peer, transfer, index, bytes]() {
                            peer->OnReliableFragment(this, transfer, index, bytes);
                          });
        ArmRetryTimer(peer, transfer, index);
      },
      transfer->priority);
}

void NetMsgServer::ArmRetryTimer(NetMsgServer* peer, std::shared_ptr<OutboundTransfer> transfer,
                                 std::size_t index) {
  SimDuration rto = costs_.netmsg_rto_initial;
  for (std::uint32_t i = 0; i < transfer->retries[index] && rto < costs_.netmsg_rto_max; ++i) {
    rto += rto;  // exponential backoff
  }
  rto = std::min(rto, costs_.netmsg_rto_max);
  sim_.ScheduleAfter(rto, [this, peer, transfer, index]() {
    if (transfer->dead || transfer->acked[index]) {
      return;
    }
    if (transfer->retries[index] >= costs_.netmsg_max_retries) {
      DeadLetterTransfer(transfer);
      return;
    }
    ++transfer->retries[index];
    SendFragment(peer, transfer, index, /*retransmit=*/true);
  });
}

void NetMsgServer::OnReliableFragment(NetMsgServer* sender,
                                      std::shared_ptr<OutboundTransfer> transfer,
                                      std::size_t index, ByteCount bytes) {
  ++stats_.fragments_received;
  const std::uint64_t id = transfer->transfer;
  // Every arrival is acknowledged, duplicates included: the sender may be
  // retrying because the previous ack was the casualty.
  SendAck(sender, id, index);
  Tracer* tracer = sim_.tracer();
  if (completed_transfers_.count(id) != 0 ||
      !inbound_[id].received.insert(index).second) {
    ++stats_.duplicates_suppressed;
    if (tracer != nullptr && tracer->verbose()) {
      tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:dup-suppressed",
                      sim_.Now(),
                      {{"transfer", Json(id)},
                       {"index", Json(static_cast<std::uint64_t>(index))}});
    }
    return;
  }
  InboundReliable& inbound = inbound_[id];
  inbound.bytes += bytes;
  if (inbound.received.size() < transfer->frag_bytes.size()) {
    return;
  }

  // Complete: claim the payload (the sender's copy is no longer needed —
  // any retransmissions still in flight will be suppressed above), charge
  // this node's handling in one piece and deliver.
  completed_transfers_.insert(id);
  const std::uint64_t fragments = transfer->frag_bytes.size();
  const ByteCount total_bytes = inbound.bytes;
  if (tracer != nullptr) {
    tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:delivered", sim_.Now(),
                    {{"transfer", Json(id)},
                     {"bytes", Json(total_bytes)},
                     {"fragments", Json(fragments)}});
  }
  inbound_.erase(id);
  transfer->delivered = true;
  Message msg = std::move(transfer->msg);
  ++stats_.messages_delivered;
  const SimDuration handle = NetMsgDeliveryCost(costs_, fragments, total_bytes);
  const CpuPriority priority =
      costs_.fault_priority_lane && msg.traffic == TrafficKind::kFaultData
          ? CpuPriority::kHigh
          : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(CpuWork::kNetMsgServer, handle,
                               [this, msg = std::move(msg)]() mutable {
                                 fabric_.DeliverAt(host_, std::move(msg));
                               },
                               priority);
}

void NetMsgServer::SendAck(NetMsgServer* sender, std::uint64_t transfer, std::size_t index) {
  ++stats_.acks_sent;
  if (Tracer* tracer = sim_.tracer();
      tracer != nullptr && tracer->verbose()) {
    tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:ack-send", sim_.Now(),
                    {{"transfer", Json(transfer)},
                     {"index", Json(static_cast<std::uint64_t>(index))}});
  }
  // Acks are tiny driver-level frames: they ride the (faulty) wire but
  // charge no NetMsgServer CPU, and are never themselves retried — the
  // sender's retransmission timer covers their loss.
  network_.Transmit(host_, sender->host(), costs_.netmsg_ack_bytes, TrafficKind::kControl,
                    [sender, transfer, index]() { sender->OnFragmentAck(transfer, index); });
}

void NetMsgServer::OnFragmentAck(std::uint64_t transfer, std::size_t index) {
  ++stats_.acks_received;
  if (Tracer* tracer = sim_.tracer();
      tracer != nullptr && tracer->verbose()) {
    tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:ack-recv", sim_.Now(),
                    {{"transfer", Json(transfer)},
                     {"index", Json(static_cast<std::uint64_t>(index))}});
  }
  auto it = outbound_.find(transfer);
  if (it == outbound_.end()) {
    return;  // duplicate ack for a finished transfer
  }
  OutboundTransfer& record = *it->second;
  if (record.acked[index]) {
    return;
  }
  record.acked[index] = true;
  if (++record.acked_count == record.frag_bytes.size()) {
    outbound_.erase(it);
  }
}

void NetMsgServer::DeadLetterTransfer(std::shared_ptr<OutboundTransfer> transfer) {
  if (transfer->dead) {
    return;
  }
  transfer->dead = true;
  outbound_.erase(transfer->transfer);
  if (transfer->delivered) {
    // Two-generals: every fragment arrived but the acks were lost. The
    // receiver owns the message; this is a success, not a failure.
    ACCENT_LOG(kDebug) << "transfer " << transfer->transfer
                       << " acks lost but payload delivered; not dead-lettering";
    return;
  }
  ++stats_.transfers_dead_lettered;
  const Message& msg = transfer->msg;
  if (Tracer* tracer = sim_.tracer()) {
    tracer->Instant(host_, TraceLane::kNetMsg, "netmsg:dead-letter", sim_.Now(),
                    {{"transfer", Json(transfer->transfer)},
                     {"op", Json(MsgOpName(msg.op))},
                     {"dest", Json(transfer->dest.value)}});
  }
  ACCENT_LOG(kInfo) << "dead-lettering " << MsgOpName(msg.op) << " transfer "
                    << transfer->transfer << " to " << transfer->dest;

  if (msg.op == MsgOp::kImagReadRequest) {
    // The unreachable peer owes this host memory it will never deliver:
    // bounce a terminal failure reply to the local pager so the faulting
    // process stops instead of hanging (§2.3's "analyze and properly
    // terminate", stretched across machines).
    const auto& request = msg.BodyAs<ImagReadRequest>();
    ImagReadReply reply;
    reply.request_id = request.request_id;
    reply.segment = request.segment;
    reply.offset = request.offset;
    reply.failed = true;
    Message bounce;
    bounce.dest = request.reply_port;
    bounce.op = MsgOp::kImagReadReply;
    bounce.traffic = TrafficKind::kControl;
    bounce.inline_bytes = kImagReplyBodyBytes;
    bounce.body = reply;
    fabric_.DeliverAt(host_, std::move(bounce));
    return;
  }
  if (dead_letter_ != nullptr) {
    dead_letter_(msg);
  }
}

}  // namespace accent
