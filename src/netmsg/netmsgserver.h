// The NetMsgServer: Accent's user-level network IPC extension (section 2.4).
//
// One runs on every host. It carries messages whose destination port lives
// on another machine: large messages are fragmented, streamed over the wire
// and reassembled; every byte handled costs CPU on *both* nodes — this
// software path, not the 10 Mbit wire, is the paper's bottleneck, and the
// Figure 4-4 "message handling cost" metric is exactly the busy time charged
// here.
//
// On its own initiative the NetMsgServer may cache the RealMem portions of
// an outbound message and pass IOUs instead, becoming the memory manager
// for that data (copy-on-reference). Senders inhibit this with the NoIOUs
// header bit. Cached data is served by an embedded SegmentBacker answering
// Imaginary Read Requests until the Imaginary Segment Death notice arrives.
//
// Backed migration objects are indexed by *virtual address*: a request for
// offset X returns the pages at VA X of the cached address space. The
// substituted message carries a single consolidated IOU; receivers that
// need the precise RealMem layout (InsertProcess) intersect it with the
// AMap that travels in the Core message — which is why Accent ships the
// AMap eagerly.
#ifndef SRC_NETMSG_NETMSGSERVER_H_
#define SRC_NETMSG_NETMSGSERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/host/cpu.h"
#include "src/ipc/fabric.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/vm/backer.h"
#include "src/vm/segment.h"

namespace accent {

class NetMsgServer;

// Host -> NetMsgServer lookup shared by all servers in one simulation.
class NetMsgDirectory {
 public:
  void Register(HostId host, NetMsgServer* server);
  NetMsgServer* Find(HostId host) const;

 private:
  std::map<std::uint64_t, NetMsgServer*> servers_;
};

struct NetMsgStats {
  std::uint64_t messages_forwarded = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t fragments_received = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t regions_cached = 0;    // Real regions substituted with IOUs
  ByteCount bytes_cached = 0;          // page bytes kept home by substitution
};

class NetMsgServer : public RemoteTransport {
 public:
  NetMsgServer(HostId host, Simulator* sim, const CostTable* costs, IpcFabric* fabric,
               Network* network, SegmentTable* segments, NetMsgDirectory* directory);

  // Allocates the backing port and joins the directory.
  void Start();

  HostId host() const { return host_; }
  PortId backing_port() const { return backer_.port(); }
  SegmentBacker& backer() { return backer_; }

  // Enables/disables IOU substitution for eligible outbound messages
  // (ablation knob; the paper's system has it on).
  void set_iou_caching(bool enabled) { iou_caching_ = enabled; }
  bool iou_caching() const { return iou_caching_; }

  // Adopts `pages` (keyed by VA page index) as a VA-indexed backed object
  // and returns its IouRef. Used by the resident-set strategy, which ships
  // the resident pages physically and leaves IOUs for the rest.
  IouRef AdoptPages(std::vector<std::pair<PageIndex, PageData>> pages, const std::string& name);

  // RemoteTransport: carries `msg` to the NetMsgServer at `dest_host`.
  void ForwardToRemote(HostId dest_host, Message msg) override;

  const NetMsgStats& stats() const { return stats_; }

 private:
  friend class NetMsgDirectory;

  // Replaces the message's RealMem regions with one consolidated IOU,
  // caching their pages locally. Returns true if substitution happened.
  bool SubstituteIous(Message* msg);

  static bool EligibleForSubstitution(const Message& msg);

  // Receiving side: one inbound fragment of `transfer`; `msg` rides with
  // the final one. Reassembly is store-and-forward: the receiving server's
  // per-byte handling runs once the message is complete, which serialises
  // the two nodes' CPU work the way the measured system behaved.
  void OnFragmentArrived(std::uint64_t transfer, ByteCount bytes, bool final_fragment,
                         Message msg);

  HostId host_;
  Simulator& sim_;
  const CostTable& costs_;
  IpcFabric& fabric_;
  Network& network_;
  NetMsgDirectory& directory_;
  SegmentBacker backer_;
  bool iou_caching_ = true;
  std::uint64_t cached_objects_ = 0;
  std::uint64_t next_transfer_id_ = 1;
  struct Reassembly {
    ByteCount bytes = 0;
    std::uint64_t fragments = 0;
  };
  std::map<std::uint64_t, Reassembly> reassembly_;  // keyed by transfer id
  NetMsgStats stats_;
};

}  // namespace accent

#endif  // SRC_NETMSG_NETMSGSERVER_H_
