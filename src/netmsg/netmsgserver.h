// The NetMsgServer: Accent's user-level network IPC extension (section 2.4).
//
// One runs on every host. It carries messages whose destination port lives
// on another machine: large messages are fragmented, streamed over the wire
// and reassembled; every byte handled costs CPU on *both* nodes — this
// software path, not the 10 Mbit wire, is the paper's bottleneck, and the
// Figure 4-4 "message handling cost" metric is exactly the busy time charged
// here.
//
// On its own initiative the NetMsgServer may cache the RealMem portions of
// an outbound message and pass IOUs instead, becoming the memory manager
// for that data (copy-on-reference). Senders inhibit this with the NoIOUs
// header bit. Cached data is served by an embedded SegmentBacker answering
// Imaginary Read Requests until the Imaginary Segment Death notice arrives.
//
// Backed migration objects are indexed by *virtual address*: a request for
// offset X returns the pages at VA X of the cached address space. The
// substituted message carries a single consolidated IOU; receivers that
// need the precise RealMem layout (InsertProcess) intersect it with the
// AMap that travels in the Core message — which is why Accent ships the
// AMap eagerly.
#ifndef SRC_NETMSG_NETMSGSERVER_H_
#define SRC_NETMSG_NETMSGSERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/host/cpu.h"
#include "src/ipc/fabric.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/vm/backer.h"
#include "src/vm/segment.h"

namespace accent {

class NetMsgServer;
class PageService;

// Host -> NetMsgServer lookup shared by all servers in one simulation.
class NetMsgDirectory {
 public:
  void Register(HostId host, NetMsgServer* server);
  NetMsgServer* Find(HostId host) const;

 private:
  std::map<std::uint64_t, NetMsgServer*> servers_;
};

// Number of wire fragments a message of `wire_bytes` is carved into —
// ceil(wire / netmsg_fragment_bytes), never zero (headers ride a fragment
// even for empty messages).
std::uint64_t NetMsgFragmentCount(const CostTable& costs, ByteCount wire_bytes);

// CPU charged for handling a complete message of `fragments` fragments
// totalling `bytes`: the per-message protocol work plus per-fragment and
// per-byte costs. Both delivery paths (fire-and-forget and reliable) and
// the cluster model's analytic delivery charge use this one formula.
SimDuration NetMsgDeliveryCost(const CostTable& costs, std::uint64_t fragments,
                               ByteCount bytes);

struct NetMsgStats {
  std::uint64_t messages_forwarded = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t fragments_received = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t regions_cached = 0;    // Real regions substituted with IOUs
  ByteCount bytes_cached = 0;          // page bytes kept home by substitution

  // Reliable-transport counters; all zero when reliable mode is off.
  std::uint64_t fragments_retransmitted = 0;
  ByteCount retransmit_bytes = 0;            // wire bytes re-sent
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t duplicates_suppressed = 0;   // fragments discarded as dups
  std::uint64_t transfers_dead_lettered = 0; // gave up after max retries
};

class NetMsgServer : public RemoteTransport {
 public:
  NetMsgServer(HostId host, Simulator* sim, const CostTable* costs, IpcFabric* fabric,
               Network* network, SegmentTable* segments, NetMsgDirectory* directory);

  // Allocates the backing port and joins the directory.
  void Start();

  HostId host() const { return host_; }
  PortId backing_port() const { return backer_.port(); }
  SegmentBacker& backer() { return backer_; }

  // Enables/disables IOU substitution for eligible outbound messages
  // (ablation knob; the paper's system has it on).
  void set_iou_caching(bool enabled) { iou_caching_ = enabled; }
  bool iou_caching() const { return iou_caching_; }

  // Switches outbound transfers to the reliable protocol: per-fragment
  // sequence numbers, receiver-side duplicate suppression, per-fragment
  // acknowledgements and timeout-driven retransmission with capped
  // exponential backoff (costs.netmsg_rto_*). Off by default — the
  // lossless paper runs use the original fire-and-forget path and stay
  // bit-identical. Enable together with a Network fault injector.
  void set_reliable(bool enabled) { reliable_ = enabled; }
  bool reliable() const { return reliable_; }

  // Invoked (reliable mode) when a transfer exhausts its retries and the
  // peer is presumed unreachable for good; receives the undelivered
  // message. Imaginary Read Requests are bounced to the local pager as
  // failed replies before the handler is consulted.
  using DeadLetterHandler = std::function<void(const Message&)>;
  void set_dead_letter_handler(DeadLetterHandler handler) {
    dead_letter_ = std::move(handler);
  }

  // Adopts `pages` (keyed by VA page index) as a VA-indexed backed object
  // and returns its IouRef (marked migration_cache). Used by the
  // resident-set strategy, which ships the resident pages physically and
  // leaves IOUs for the rest, and by SubstituteIous. Adoption moves payload
  // references — the cache never duplicates page bytes. When `owner` is
  // valid the object is recorded against that process so it can be handed
  // off if the process re-migrates (TakeCacheObjectsFor).
  IouRef AdoptPages(std::vector<std::pair<PageIndex, PageRef>> pages, const std::string& name,
                    ProcId owner = ProcId{});

  // Returns (and forgets) the cache objects adopted for `owner`. The caller
  // — the migration manager collapsing a chain — takes responsibility for
  // exporting or retiring them through the embedded backer.
  std::vector<IouRef> TakeCacheObjectsFor(ProcId owner);

  // Wires the host's content-addressed PageService (docs/INTERNALS.md §15).
  // Null (the default) keeps the classic protocol: no hashes are computed
  // and outbound IOU regions carry no rider.
  void set_page_service(PageService* service) { page_service_ = service; }
  PageService* page_service() const { return page_service_; }

  // Builds the §15 hash rider for an IOU region based at `lo` whose
  // payloads are `pages` (VA-page-indexed), publishing every payload into
  // this host's content plane as a side effect. The rider is sparse: hole
  // pages — spanned by the consolidated IOU but not present — carry no
  // entry at all, so a 4 GB zero-fill expanse bridged by the span costs
  // nothing in memory or on the wire. Returns an empty rider (zero wire
  // bytes, the classic protocol) when no PageService is wired.
  std::vector<PageHashEntry> PublishIouPages(
      const std::vector<std::pair<PageIndex, PageRef>>& pages, Addr lo);

  // RemoteTransport: carries `msg` to the NetMsgServer at `dest_host`.
  void ForwardToRemote(HostId dest_host, Message msg) override;

  const NetMsgStats& stats() const { return stats_; }

 private:
  friend class NetMsgDirectory;

  // Replaces the message's RealMem regions with one consolidated IOU,
  // caching their pages locally. Returns true if substitution happened.
  bool SubstituteIous(Message* msg);

  static bool EligibleForSubstitution(const Message& msg);

  // Receiving side: one inbound fragment of `transfer`; `msg` rides with
  // the final one. Reassembly is store-and-forward: the receiving server's
  // per-byte handling runs once the message is complete, which serialises
  // the two nodes' CPU work the way the measured system behaved.
  void OnFragmentArrived(std::uint64_t transfer, ByteCount bytes, bool final_fragment,
                         Message msg);

  // --- reliable transport ------------------------------------------------
  // One in-flight reliable transfer on the sending side. The message stays
  // here — the authoritative copy — until every fragment is acknowledged;
  // the receiver claims it (sets `delivered`) when reassembly completes, so
  // a dead-letter verdict reached purely through lost acks is downgraded
  // to success (the two-generals case: data arrived, receipts didn't).
  struct OutboundTransfer {
    Message msg;
    HostId dest;
    std::uint64_t transfer = 0;
    TrafficKind kind = TrafficKind::kControl;
    CpuPriority priority = CpuPriority::kNormal;
    std::vector<ByteCount> frag_bytes;
    std::vector<bool> acked;
    std::vector<std::uint32_t> retries;
    std::uint64_t acked_count = 0;
    bool delivered = false;  // receiver completed reassembly
    bool dead = false;       // dead-lettered; stop retrying
  };

  void ForwardReliable(NetMsgServer* peer, Message msg, CpuPriority priority);
  void SendFragment(NetMsgServer* peer, std::shared_ptr<OutboundTransfer> transfer,
                    std::size_t index, bool retransmit);
  void ArmRetryTimer(NetMsgServer* peer, std::shared_ptr<OutboundTransfer> transfer,
                     std::size_t index);
  void OnReliableFragment(NetMsgServer* sender, std::shared_ptr<OutboundTransfer> transfer,
                          std::size_t index, ByteCount bytes);
  void SendAck(NetMsgServer* sender, std::uint64_t transfer, std::size_t index);
  void OnFragmentAck(std::uint64_t transfer, std::size_t index);
  void DeadLetterTransfer(std::shared_ptr<OutboundTransfer> transfer);

  HostId host_;
  Simulator& sim_;
  const CostTable& costs_;
  IpcFabric& fabric_;
  Network& network_;
  NetMsgDirectory& directory_;
  SegmentBacker backer_;
  PageService* page_service_ = nullptr;
  bool iou_caching_ = true;
  std::uint64_t cached_objects_ = 0;
  // Cache objects adopted on behalf of a migrating process, keyed by
  // ProcId: the chain-collapse handoff evacuates these when the process
  // re-migrates away from this host.
  std::map<std::uint64_t, std::vector<IouRef>> cache_objects_by_proc_;
  std::uint64_t next_transfer_id_ = 1;
  struct Reassembly {
    ByteCount bytes = 0;
    std::uint64_t fragments = 0;
  };
  std::map<std::uint64_t, Reassembly> reassembly_;  // keyed by transfer id

  // Reliable-mode state.
  bool reliable_ = false;
  DeadLetterHandler dead_letter_;
  std::map<std::uint64_t, std::shared_ptr<OutboundTransfer>> outbound_;
  struct InboundReliable {
    std::set<std::size_t> received;  // fragment indices seen so far
    ByteCount bytes = 0;
  };
  std::map<std::uint64_t, InboundReliable> inbound_;   // keyed by transfer id
  std::set<std::uint64_t> completed_transfers_;        // fully reassembled
  NetMsgStats stats_;
};

}  // namespace accent

#endif  // SRC_NETMSG_NETMSGSERVER_H_
