#include "src/proc/process.h"

#include <utility>

#include "src/base/logging.h"

namespace accent {

const char* ProcStateName(ProcState state) {
  switch (state) {
    case ProcState::kReady: return "ready";
    case ProcState::kRunning: return "running";
    case ProcState::kSuspended: return "suspended";
    case ProcState::kExcised: return "excised";
    case ProcState::kDone: return "done";
    case ProcState::kFaulted: return "faulted";
  }
  return "?";
}

Process::Process(ProcId id, std::string name, HostEnv* env,
                 std::unique_ptr<AddressSpace> space, std::uint64_t microstate_token)
    : id_(id),
      name_(std::move(name)),
      env_(env),
      space_(std::move(space)),
      microstate_token_(microstate_token) {
  ACCENT_EXPECTS(env_ != nullptr && env_->complete());
  ACCENT_EXPECTS(space_ != nullptr);
}

Process::~Process() = default;

void Process::SetTrace(TracePtr trace, std::size_t pc) {
  ACCENT_EXPECTS(trace != nullptr && !trace->empty());
  ACCENT_EXPECTS(pc <= trace->size());
  trace_ = std::move(trace);
  trace_pc_ = pc;
}

void Process::AttachReceiveRight(PortId port) {
  env_->fabric->SetReceiver(port, this);
  receive_rights_.push_back(port);
}

void Process::Start() {
  ACCENT_EXPECTS(trace_ != nullptr) << " process " << name_ << " has no trace";
  ACCENT_EXPECTS(state_ == ProcState::kReady || state_ == ProcState::kSuspended);
  state_ = ProcState::kRunning;
  start_time_ = env_->sim->Now();
  env_->sim->ScheduleAfter(SimDuration::zero(), [this]() { RunNext(); });
}

void Process::RequestSuspend(std::function<void()> suspended) {
  ACCENT_EXPECTS(suspended != nullptr);
  ACCENT_EXPECTS(state_ == ProcState::kRunning || state_ == ProcState::kReady ||
                 state_ == ProcState::kSuspended)
      << " cannot suspend " << name_ << " in state " << ProcStateName(state_);
  if (state_ != ProcState::kRunning || !access_in_flight_) {
    if (state_ == ProcState::kRunning) {
      state_ = ProcState::kSuspended;
    }
    suspended();
    return;
  }
  suspend_waiter_ = std::move(suspended);
  state_ = ProcState::kSuspended;  // RunNext stops once the access drains
}

void Process::SuspendAt(std::size_t pc, std::function<void()> reached) {
  ACCENT_EXPECTS(reached != nullptr);
  ACCENT_EXPECTS(trace_ != nullptr && pc < trace_->size());
  ACCENT_EXPECTS(pc >= trace_pc_) << " watchpoint already passed";
  watch_pc_ = pc;
  watch_reached_ = std::move(reached);
}

void Process::RunNext() {
  if (state_ != ProcState::kRunning) {
    return;
  }
  if (trace_pc_ == watch_pc_) {
    // Reached the marked point in its life: quiesce and hand control over.
    watch_pc_ = SIZE_MAX;
    state_ = ProcState::kSuspended;
    auto reached = std::move(watch_reached_);
    watch_reached_ = nullptr;
    reached();
    return;
  }
  ACCENT_CHECK(trace_pc_ < trace_->size()) << " trace ran off the end in " << name_;
  const TraceOp& op = (*trace_)[trace_pc_];
  switch (op.kind) {
    case TraceOp::Kind::kCompute:
      env_->cpu->Submit(CpuWork::kProcess, op.compute, [this]() {
        ++trace_pc_;
        RunNext();
      });
      return;
    case TraceOp::Kind::kTouch: {
      access_in_flight_ = true;
      env_->pager->Access(space_.get(), op.addr, op.write,
                          [this, &op](const AccessOutcome& outcome) {
                            CompleteTouch(op, outcome);
                          });
      return;
    }
    case TraceOp::Kind::kTerminate: {
      state_ = ProcState::kDone;
      finish_time_ = env_->sim->Now();
      env_->pager->NotifySpaceDeath(space_.get());
      env_->memory->RemoveSpace(space_->id());
      ACCENT_LOG(kInfo) << name_ << " terminated";
      if (on_terminate_ != nullptr) {
        on_terminate_(this);
      }
      return;
    }
  }
}

void Process::CompleteTouch(const TraceOp& op, const AccessOutcome& outcome) {
  access_in_flight_ = false;
  if (outcome.failed) {
    // Unsatisfiable reference: stop here for the debugger (section 2.3).
    state_ = ProcState::kFaulted;
    ACCENT_LOG(kInfo) << name_ << " faulted at addr " << op.addr;
    if (suspend_waiter_ != nullptr) {
      auto waiter = std::move(suspend_waiter_);
      suspend_waiter_ = nullptr;
      waiter();
    }
    if (on_fault_ != nullptr) {
      on_fault_(this, outcome);
    }
    return;
  }
  if (op.write) {
    space_->WriteByte(op.addr, op.value);
    env_->memory->MarkDirty(space_->id(), PageOf(op.addr));
  }
  ++trace_pc_;
  if (suspend_waiter_ != nullptr) {
    // A suspension was requested while this access was in flight.
    auto waiter = std::move(suspend_waiter_);
    suspend_waiter_ = nullptr;
    waiter();
    return;
  }
  RunNext();
}

std::unique_ptr<AddressSpace> Process::TakeSpace() {
  ACCENT_EXPECTS(state_ == ProcState::kSuspended || state_ == ProcState::kReady)
      << " excising non-quiescent process " << name_;
  return std::move(space_);
}

void Process::HandleMessage(Message msg) {
  (void)msg;
  ++user_messages_;
}

}  // namespace accent
