// HostEnv: one simulated machine's assembled subsystems.
//
// Construction/wiring is done by the Testbed (src/experiments); modules
// below this level take only the specific dependencies they need, so this
// bundle exists purely to pass "a machine" around.
#ifndef SRC_PROC_HOST_ENV_H_
#define SRC_PROC_HOST_ENV_H_

#include "src/base/types.h"
#include "src/host/calibration.h"
#include "src/host/cpu.h"
#include "src/host/disk.h"
#include "src/host/physical_memory.h"
#include "src/ipc/fabric.h"
#include "src/sim/simulator.h"
#include "src/vm/pager.h"
#include "src/vm/segment.h"

namespace accent {

class NetMsgServer;

struct HostEnv {
  HostId id;
  Simulator* sim = nullptr;
  const CostTable* costs = nullptr;
  IpcFabric* fabric = nullptr;
  Cpu* cpu = nullptr;
  Disk* disk = nullptr;
  PhysicalMemory* memory = nullptr;
  Pager* pager = nullptr;
  NetMsgServer* netmsg = nullptr;     // null on isolated single-host setups
  SegmentTable* segments = nullptr;   // shared per simulation
  // HostCalibration::diskless: this machine pages across the wire and must
  // never anchor local backing (FileServer::Start refuses to run here).
  bool diskless = false;
  // This host's deviation from the shared CostTable (identity by default).
  // The pre-copy SLO predictor reads it; CPU/wire charging is already
  // applied by the subsystems themselves.
  HostCalibration calibration{};

  bool complete() const {
    return sim != nullptr && costs != nullptr && fabric != nullptr && cpu != nullptr &&
           disk != nullptr && memory != nullptr && pager != nullptr && segments != nullptr;
  }
};

}  // namespace accent

#endif  // SRC_PROC_HOST_ENV_H_
