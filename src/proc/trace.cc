#include "src/proc/trace.h"

#include <set>

namespace accent {

SimDuration TraceComputeTime(const Trace& trace) {
  SimDuration total{0};
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kCompute) {
      total += op.compute;
    }
  }
  return total;
}

std::uint64_t TraceTouchedPages(const Trace& trace) {
  std::set<PageIndex> pages;
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kTouch) {
      pages.insert(PageOf(op.addr));
    }
  }
  return pages.size();
}

}  // namespace accent
