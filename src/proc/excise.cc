#include "src/proc/excise.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace accent {
namespace {

// Builds the RIMAS region list: one Data region per RealMem interval, one
// IOU region per contiguous imaginary backer run.
std::vector<MemoryRegion> BuildRimasRegions(const AddressSpace& space) {
  std::vector<MemoryRegion> regions;
  // One region per AMap interval; count them up front so the regions vector
  // is allocated exactly once.
  std::size_t region_count = 0;
  space.amap().ForEach([&](const AMap::Interval& iv) {
    if (iv.value == MemClass::kReal || iv.value == MemClass::kImag) {
      ++region_count;  // imaginary intervals may still split per backer
    }
  });
  regions.reserve(region_count);
  space.amap().ForEach([&](const AMap::Interval& iv) {
    if (iv.value == MemClass::kReal) {
      std::vector<PageRef> pages;
      pages.reserve((iv.end - iv.begin) / kPageSize);
      for (PageIndex page = PageOf(iv.begin); page < PageOf(iv.end); ++page) {
        pages.push_back(space.ReadPage(page));  // shares the payload
      }
      regions.push_back(MemoryRegion::Data(iv.begin, std::move(pages)));
      return;
    }
    if (iv.value == MemClass::kImag) {
      // Split the interval at backer discontinuities.
      PageIndex page = PageOf(iv.begin);
      const PageIndex end = PageOf(iv.end);
      while (page < end) {
        const PageIndex run = space.ImagRunLength(page, end - page);
        ACCENT_CHECK(run >= 1);
        const AddressSpace::ImagTarget target = space.ImagTargetOf(PageBase(page));
        IouRef iou = target.iou;
        // Rebase so that the region's own offset convention is preserved:
        // offset within the backer of the region's first page.
        iou.offset = target.backer_offset;
        MemoryRegion region = MemoryRegion::Iou(PageBase(page), run * kPageSize, iou);
        // Forward content-hash hints across hops (docs/INTERNALS.md §15):
        // when the departing space knows every page's hash, the rider
        // travels with the re-issued IOU so the next destination can keep
        // probing caches. A partially-hinted run ships no rider.
        std::vector<PageHashEntry> rider;
        rider.reserve(run);
        for (PageIndex i = 0; i < run; ++i) {
          const PageHash* hint = space.HashHintOf(page + i);
          if (hint == nullptr) {
            rider.clear();
            break;
          }
          rider.push_back({i, *hint});
        }
        region.page_hashes = std::move(rider);
        regions.push_back(std::move(region));
        page += run;
      }
    }
  });
  return regions;
}

struct InsertPlan {
  std::map<PageIndex, const PageRef*> data_pages;
  std::vector<const MemoryRegion*> iou_regions;
};

// Returns the most specific (smallest) IOU region covering `addr`. A RIMAS
// can carry both exact owed ranges (pointing at an earlier host's backer)
// and a consolidated cache region whose span includes holes it cannot
// serve; the exact region must win where both cover (re-migration).
const MemoryRegion* IouRegionCovering(const InsertPlan& plan, Addr addr) {
  const MemoryRegion* best = nullptr;
  for (const MemoryRegion* region : plan.iou_regions) {
    if (addr >= region->base && addr < region->base + region->size) {
      if (best == nullptr || region->size < best->size) {
        best = region;
      }
    }
  }
  return best;
}

}  // namespace

void ExciseProcess(Process* proc, std::function<void(ExciseResult)> done) {
  ACCENT_EXPECTS(proc != nullptr && done != nullptr);
  ACCENT_EXPECTS(proc->state() == ProcState::kSuspended || proc->state() == ProcState::kReady)
      << " ExciseProcess requires a quiescent process";
  HostEnv* env = proc->env();
  const CostTable& costs = *env->costs;
  AddressSpace* space = proc->space();
  ACCENT_CHECK(space != nullptr);

  const auto entries = static_cast<std::int64_t>(space->map_entries());
  const auto real_pages = static_cast<std::int64_t>(space->RealBytes() / kPageSize);
  const auto resident = static_cast<std::int64_t>(env->memory->ResidentCount(space->id()));

  const SimDuration amap_cost =
      costs.amap_base + costs.amap_per_map_entry * entries + costs.amap_per_real_page * real_pages;
  const SimDuration rimas_cost = costs.rimas_base + costs.rimas_per_map_entry * entries +
                                 costs.rimas_per_resident_page * resident;

  auto result = std::make_shared<ExciseResult>();
  const SimTime start = env->sim->Now();

  // Phase 1: AMap construction (the expensive walk of process + system maps).
  env->cpu->Submit(CpuWork::kMigration, amap_cost, [env, proc, result, start, rimas_cost,
                                                    done = std::move(done)]() mutable {
    result->amap_time = env->sim->Now() - start;
    const SimTime rimas_start = env->sim->Now();

    // Phase 2: collapse of process memory into the contiguous RIMAS chunk.
    env->cpu->Submit(CpuWork::kMigration, rimas_cost, [env, proc, result, start, rimas_start,
                                                       done = std::move(done)]() mutable {
      result->rimas_time = env->sim->Now() - rimas_start;

      // Phase 3: port-right extraction, PCB and microstate packaging.
      env->cpu->Submit(CpuWork::kMigration, env->costs->excise_other,
                       [env, proc, result, start, done = std::move(done)]() mutable {
        std::unique_ptr<AddressSpace> space_taken = proc->TakeSpace();

        CoreBody body;
        body.proc = proc->id();
        body.name = proc->name();
        body.microstate_token = proc->microstate_token();
        body.trace = proc->trace();
        body.trace_pc = proc->trace_pc();

        result->core.op = MsgOp::kMigrateCore;
        result->core.traffic = TrafficKind::kCoreContext;
        result->core.inline_bytes = env->costs->core_context_bytes;
        result->core.amap = space_taken->amap();
        result->core.has_amap = true;
        result->core.body = std::move(body);
        result->core.rights.reserve(proc->receive_rights().size());
        for (PortId port : proc->receive_rights()) {
          result->core.rights.push_back(PortRightTransfer{port, /*receive_right=*/true});
          // The caller (migration agent) holds the rights in the interim.
          env->fabric->SetReceiver(port, nullptr);
        }

        result->rimas.op = MsgOp::kMigrateRimas;
        result->rimas.traffic = TrafficKind::kBulkData;
        result->rimas.inline_bytes = 32;
        result->rimas.body = RimasBody{proc->id()};
        result->rimas.regions = BuildRimasRegions(*space_taken);

        // The process ceases to exist at this host.
        env->memory->RemoveSpace(space_taken->id());
        proc->MarkExcised();

        result->overall_time = env->sim->Now() - start;
        done(std::move(*result));
      });
    });
  });
}

void InsertProcess(HostEnv* env, Message core, Message rimas,
                   std::function<void(std::unique_ptr<Process>, InsertResult)> done) {
  ACCENT_EXPECTS(env != nullptr && env->complete() && done != nullptr);
  ACCENT_EXPECTS(core.op == MsgOp::kMigrateCore && core.has_amap);
  ACCENT_EXPECTS(rimas.op == MsgOp::kMigrateRimas);
  const CostTable& costs = *env->costs;

  ByteCount data_bytes = 0;
  for (const MemoryRegion& region : rimas.regions) {
    if (region.mem_class == MemClass::kReal) {
      data_bytes += region.size;
    }
  }
  const auto entries = static_cast<std::int64_t>(core.amap.entry_count());
  const auto data_pages = static_cast<std::int64_t>(data_bytes / kPageSize);
  const SimDuration cost = costs.insert_base + costs.insert_per_map_entry * entries +
                           costs.insert_per_resident_page * data_pages;

  const SimTime start = env->sim->Now();
  auto state = std::make_shared<std::pair<Message, Message>>(std::move(core), std::move(rimas));

  env->cpu->Submit(CpuWork::kMigration, cost, [env, state, start, done = std::move(done)]() {
    Message& core_msg = state->first;
    Message& rimas_msg = state->second;
    const auto& body = core_msg.BodyAs<CoreBody>();

    InsertPlan plan;
    for (const MemoryRegion& region : rimas_msg.regions) {
      if (region.mem_class == MemClass::kReal) {
        for (PageIndex i = 0; i < region.page_count(); ++i) {
          plan.data_pages[PageOf(region.base) + i] = &region.pages[i];
        }
      } else if (region.mem_class == MemClass::kImag) {
        plan.iou_regions.push_back(&region);
      }
    }

    auto space = std::make_unique<AddressSpace>(SpaceId(env->sim->AllocateId()), env->id);
    // One imaginary stand-in segment per distinct backer object.
    std::map<std::uint64_t, Segment*> imag_segments;
    auto imag_segment_for = [&](const IouRef& iou) {
      auto it = imag_segments.find(iou.segment.value);
      if (it != imag_segments.end()) {
        return it->second;
      }
      Segment* segment = env->segments->CreateImaginary(kAddressSpaceLimit, iou,
                                                        "imag-standin:" + body.name);
      imag_segments.emplace(iou.segment.value, segment);
      return segment;
    };

    // Maps an address run imaginary through the IOU region(s) covering it.
    // One AMap interval may coalesce ranges owed to different backers
    // (re-migration), so the run is split at region boundaries.
    auto map_imaginary_run = [&](Addr begin, Addr end) {
      Addr cursor = begin;
      while (cursor < end) {
        const MemoryRegion* region = IouRegionCovering(plan, cursor);
        ACCENT_CHECK(region != nullptr)
            << " page at " << cursor << " has neither data nor an IOU in the RIMAS message";
        const Addr stop = std::min(end, region->base + region->size);
        IouRef iou = region->iou;
        // Region offset convention: iou.offset addresses the region's base.
        const ByteCount target_offset = iou.offset + (cursor - region->base);
        iou.offset = 0;
        Segment* segment = imag_segment_for(iou);
        space->MapImaginary(cursor, stop, segment, target_offset);
        // Copy the region's hash rider (if any) into per-page hints so the
        // pager's hash-probe fault walk can consult them later.
        if (!region->page_hashes.empty()) {
          for (Addr va = cursor; va < stop; va += kPageSize) {
            const PageIndex slot = (va - region->base) / kPageSize;
            if (const PageHash* hash = region->FindPageHash(slot)) {
              space->SetPageHashHint(PageOf(va), *hash);
            }
          }
        }
        cursor = stop;
      }
    };

    core_msg.amap.ForEach([&](const AMap::Interval& iv) {
      switch (iv.value) {
        case MemClass::kRealZero:
          space->Validate(iv.begin, iv.end);
          return;
        case MemClass::kReal: {
          // Validate as the foundation, then install shipped pages and map
          // the owed remainder imaginary.
          space->Validate(iv.begin, iv.end);
          PageIndex page = PageOf(iv.begin);
          const PageIndex end = PageOf(iv.end);
          while (page < end) {
            auto found = plan.data_pages.find(page);
            if (found != plan.data_pages.end()) {
              space->InstallPage(page, *found->second);
              auto eviction = env->memory->Insert(space->id(), page, /*dirty=*/true);
              if (eviction.has_value() && eviction->dirty) {
                env->disk->Write(1, nullptr);  // arriving context overflows memory
              }
              ++page;
              continue;
            }
            PageIndex run_end = page + 1;
            while (run_end < end && plan.data_pages.count(run_end) == 0) {
              ++run_end;
            }
            map_imaginary_run(PageBase(page), PageBase(run_end));
            page = run_end;
          }
          return;
        }
        case MemClass::kImag:
          map_imaginary_run(iv.begin, iv.end);
          return;
        case MemClass::kBad:
          return;
      }
    });

    auto process = std::make_unique<Process>(body.proc, body.name, env, std::move(space),
                                             body.microstate_token);
    process->SetTrace(body.trace, body.trace_pc);
    for (const PortRightTransfer& right : core_msg.rights) {
      if (right.receive_right) {
        env->fabric->MovePort(right.port, env->id, process.get());
        process->AttachReceiveRight(right.port);
      }
    }

    InsertResult result;
    result.process = process.get();
    result.insert_time = env->sim->Now() - start;
    done(std::move(process), result);
  });
}

}  // namespace accent
