// The simulated Accent process.
//
// A process is an address space plus the "first four context pieces" of the
// paper — microengine state, kernel stack, PCB and port rights (together
// roughly 1 Kbyte) — plus, in this simulator, a reference trace and a
// program counter into it. Execution is continuation-passing: compute slices
// run on the host CPU, touches go through the Pager and may block on faults,
// and the engine resumes when the fault resolves. Suspension (for excision)
// drains any in-flight access first, exactly the quiescence ExciseProcess
// needs.
#ifndef SRC_PROC_PROCESS_H_
#define SRC_PROC_PROCESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/ipc/fabric.h"
#include "src/proc/host_env.h"
#include "src/proc/trace.h"
#include "src/vm/address_space.h"

namespace accent {

enum class ProcState {
  kReady,      // created, not yet started
  kRunning,    // executing its trace
  kSuspended,  // quiescent; eligible for excision
  kExcised,    // context removed; the object is a husk
  kDone,       // trace completed
  kFaulted,    // unsatisfiable reference (BadMem / dead backer); debugger owns it
};

const char* ProcStateName(ProcState state);

class Process : public Receiver {
 public:
  // `microstate_token` is an integrity stamp carried through migration.
  Process(ProcId id, std::string name, HostEnv* env, std::unique_ptr<AddressSpace> space,
          std::uint64_t microstate_token);
  ~Process() override;

  ProcId id() const { return id_; }
  const std::string& name() const { return name_; }
  HostEnv* env() const { return env_; }
  AddressSpace* space() const { return space_.get(); }
  ProcState state() const { return state_; }
  std::uint64_t microstate_token() const { return microstate_token_; }

  // --- program ---------------------------------------------------------------
  void SetTrace(TracePtr trace, std::size_t pc = 0);
  TracePtr trace() const { return trace_; }
  std::size_t trace_pc() const { return trace_pc_; }

  // --- port rights ------------------------------------------------------------
  // Grants this process the receive right for `port` (it becomes the
  // receiver). Rights travel with the context at excision.
  void AttachReceiveRight(PortId port);
  const std::vector<PortId>& receive_rights() const { return receive_rights_; }

  // --- execution ----------------------------------------------------------------
  void Start();

  // Quiesces the process; `suspended` fires once no access is in flight.
  void RequestSuspend(std::function<void()> suspended);

  // Arranges for the process to suspend itself when execution reaches trace
  // position `pc` (before executing that op); `reached` then fires. Used by
  // lifecycle experiments to migrate a program at an exact point in its
  // life (the PM-Start/Mid/End methodology of section 4.1).
  void SuspendAt(std::size_t pc, std::function<void()> reached);

  // Invoked when the trace terminates. Set before Start().
  void set_on_terminate(std::function<void(Process*)> fn) { on_terminate_ = std::move(fn); }

  // Invoked when a reference cannot be satisfied (addressing error or a
  // dead backing port): the process stops in kFaulted for the "debugger".
  void set_on_fault(std::function<void(Process*, const AccessOutcome&)> fn) {
    on_fault_ = std::move(fn);
  }
  bool faulted() const { return state_ == ProcState::kFaulted; }

  bool done() const { return state_ == ProcState::kDone; }
  SimTime start_time() const { return start_time_; }
  SimTime finish_time() const { return finish_time_; }

  // --- excision support ----------------------------------------------------------
  // Strips the context out of this husk (ExciseProcess owns the protocol).
  std::unique_ptr<AddressSpace> TakeSpace();
  void MarkExcised() { state_ = ProcState::kExcised; }

  // --- Receiver ---------------------------------------------------------------------
  void HandleMessage(Message msg) override;
  const char* receiver_name() const override { return name_.c_str(); }
  std::uint64_t user_messages_received() const { return user_messages_; }

 private:
  void RunNext();
  void CompleteTouch(const TraceOp& op, const AccessOutcome& outcome);

  ProcId id_;
  std::string name_;
  HostEnv* env_;
  std::unique_ptr<AddressSpace> space_;
  std::uint64_t microstate_token_;
  TracePtr trace_;
  std::size_t trace_pc_ = 0;
  std::size_t watch_pc_ = SIZE_MAX;
  std::function<void()> watch_reached_;
  ProcState state_ = ProcState::kReady;
  bool access_in_flight_ = false;
  std::function<void()> suspend_waiter_;
  std::function<void(Process*)> on_terminate_;
  std::function<void(Process*, const AccessOutcome&)> on_fault_;
  std::vector<PortId> receive_rights_;
  std::uint64_t user_messages_ = 0;
  SimTime start_time_{0};
  SimTime finish_time_{0};
};

}  // namespace accent

#endif  // SRC_PROC_PROCESS_H_
