// Reference traces: the simulated programs.
//
// A trace is the sequence of things a representative process does after
// (and, in examples, before) migration: compute for a while, touch a page,
// read or write a byte, terminate. The workload generators (src/workloads)
// synthesise traces whose access patterns match the paper's program
// classes — sequential file scans (Pasmac), low-locality probes (Lisp),
// compute-bound bursts (Chess), near-nothing (Minprog).
#ifndef SRC_PROC_TRACE_H_
#define SRC_PROC_TRACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

struct TraceOp {
  enum class Kind : std::uint8_t { kCompute, kTouch, kTerminate };

  Kind kind = Kind::kCompute;
  SimDuration compute{0};       // kCompute
  Addr addr = 0;                // kTouch
  bool write = false;           // kTouch
  std::uint8_t value = 0;       // kTouch && write: byte stored at addr

  static TraceOp Compute(SimDuration d) {
    TraceOp op;
    op.kind = Kind::kCompute;
    op.compute = d;
    return op;
  }
  static TraceOp Read(Addr addr) {
    TraceOp op;
    op.kind = Kind::kTouch;
    op.addr = addr;
    return op;
  }
  static TraceOp Write(Addr addr, std::uint8_t value) {
    TraceOp op;
    op.kind = Kind::kTouch;
    op.addr = addr;
    op.write = true;
    op.value = value;
    return op;
  }
  static TraceOp Terminate() {
    TraceOp op;
    op.kind = Kind::kTerminate;
    return op;
  }
};

using Trace = std::vector<TraceOp>;
using TracePtr = std::shared_ptr<const Trace>;

class TraceBuilder {
 public:
  TraceBuilder& Compute(SimDuration d) {
    if (d > SimDuration::zero()) {
      ops_.push_back(TraceOp::Compute(d));
    }
    return *this;
  }
  TraceBuilder& Read(Addr addr) {
    ops_.push_back(TraceOp::Read(addr));
    return *this;
  }
  TraceBuilder& Write(Addr addr, std::uint8_t value) {
    ops_.push_back(TraceOp::Write(addr, value));
    return *this;
  }
  TraceBuilder& Terminate() {
    ops_.push_back(TraceOp::Terminate());
    return *this;
  }
  TraceBuilder& Append(const Trace& other) {
    ops_.insert(ops_.end(), other.begin(), other.end());
    return *this;
  }

  TracePtr Build() {
    ACCENT_EXPECTS(!ops_.empty() && ops_.back().kind == TraceOp::Kind::kTerminate)
        << " traces must end with Terminate";
    return std::make_shared<const Trace>(std::move(ops_));
  }

  std::size_t size() const { return ops_.size(); }

 private:
  Trace ops_;
};

// Total compute time contained in a trace (ignores fault costs).
SimDuration TraceComputeTime(const Trace& trace);

// Distinct pages touched by a trace.
std::uint64_t TraceTouchedPages(const Trace& trace);

}  // namespace accent

#endif  // SRC_PROC_TRACE_H_
