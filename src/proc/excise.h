// ExciseProcess / InsertProcess — the migration kernel primitives (§3.1).
//
// ExciseProcess removes a quiescent process's entire context and delivers it
// as two self-contained IPC messages:
//   Core  — microstate + kernel stack + PCB + port rights (~1 Kbyte, always
//           physically copied) plus an AMap describing the whole address
//           space;
//   RIMAS — the Real and Imaginary Memory Address Space: every RealMem and
//           ImagMem portion, collapsed. RealZeroMem never travels — the
//           AMap is enough to recreate it lazily at the destination.
// Once excised the process ceases to exist at the source; its port rights
// pass transparently inside the Core message, so senders are undisturbed.
//
// InsertProcess is the inverse: given the two messages it rebuilds the
// address space (validating zero ranges, installing shipped pages, mapping
// IOU ranges imaginary), re-homes the port rights and leaves the process
// ready to resume exactly where it stopped.
//
// Both primitives charge the calibrated Table 4-4 costs: AMap construction
// (base + per-map-entry + per-RealMem-page) and address-space collapse /
// reconstruction (base + per-entry + per-resident-page).
#ifndef SRC_PROC_EXCISE_H_
#define SRC_PROC_EXCISE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/ipc/message.h"
#include "src/proc/host_env.h"
#include "src/proc/process.h"
#include "src/proc/trace.h"

namespace accent {

// Typed body of the Core context message.
struct CoreBody {
  ProcId proc;
  std::string name;
  std::uint64_t microstate_token = 0;
  TracePtr trace;            // simulation metadata; program text rides in memory
  std::size_t trace_pc = 0;
};

// Typed body of the RIMAS message.
struct RimasBody {
  ProcId proc;
};

struct ExciseResult {
  Message core;   // op kMigrateCore (dest unset; the caller routes it)
  Message rimas;  // op kMigrateRimas
  SimDuration amap_time{0};
  SimDuration rimas_time{0};
  SimDuration overall_time{0};
};

// Excises `proc` (must be quiescent: suspended or never started). `done`
// fires when the kernel trap completes, with both context messages built.
void ExciseProcess(Process* proc, std::function<void(ExciseResult)> done);

struct InsertResult {
  Process* process = nullptr;
  SimDuration insert_time{0};
};

// Recreates a process on `env` from its two context messages. The new
// process is left kReady at its original trace position; the caller starts
// it. `own` receives ownership of the Process object.
void InsertProcess(HostEnv* env, Message core, Message rimas,
                   std::function<void(std::unique_ptr<Process>, InsertResult)> done);

}  // namespace accent

#endif  // SRC_PROC_EXCISE_H_
