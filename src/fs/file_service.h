// Files through IPC — the Accent file model (sections 2.1 and 6).
//
// Accent accesses files through an IPC interface and maps them *in their
// entirety* into process memory, which is what lets the copy-on-write and
// copy-on-reference machinery apply to file data. A FileServer owns the
// files of one host (name -> segment on the local disk) and answers open
// requests:
//   - a local client maps the returned segment directly (RealMem; faults go
//     to the local disk);
//   - a remote client receives an IouRef instead and maps the file
//     imaginary — whole-file remote access becomes copy-on-reference, the
//     "remote file and database access" application the paper's conclusion
//     proposes.
// Dirty pages are written back through kFsWriteBack messages.
#ifndef SRC_FS_FILE_SERVICE_H_
#define SRC_FS_FILE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/base/types.h"
#include "src/ipc/fabric.h"
#include "src/proc/host_env.h"
#include "src/vm/address_space.h"
#include "src/vm/backer.h"
#include "src/vm/segment.h"

namespace accent {

// File protocol ops ride on MsgOp::kUser with this selector in the body.
enum class FsOp : int {
  kOpenRequest,
  kOpenReply,
  kWriteBack,
  kWriteBackAck,
};

struct FsOpenRequest {
  FsOp fs_op = FsOp::kOpenRequest;
  std::uint64_t request_id = 0;
  std::string name;
  PortId reply_port;
};

struct FsOpenReply {
  FsOp fs_op = FsOp::kOpenReply;
  std::uint64_t request_id = 0;
  bool found = false;
  ByteCount size = 0;
  // Remote opens: the file as a lazily-delivered object.
  IouRef iou;
  // Local opens: the segment to map directly.
  SegmentId local_segment;
};

struct FsWriteBack {
  FsOp fs_op = FsOp::kWriteBack;
  std::uint64_t request_id = 0;
  std::string name;
  PortId reply_port;
  // Dirty pages ride as the message's data region (base = file offset).
};

struct FsWriteBackAck {
  FsOp fs_op = FsOp::kWriteBackAck;
  std::uint64_t request_id = 0;
  bool ok = false;
  PageIndex pages_written = 0;
};

class FileServer : public Receiver {
 public:
  explicit FileServer(HostEnv* env);

  // Allocates the service port and the backing port.
  void Start();
  PortId port() const { return port_; }
  HostId host() const { return env_->id; }

  // Creates a file of `size` bytes filled from `seed` (deterministic
  // pattern; page p carries MakePatternPage(seed + p)). Zero seed leaves
  // the file sparse (all zeroes).
  Segment* CreateFile(const std::string& name, ByteCount size, std::uint64_t seed);

  Segment* Find(const std::string& name) const;
  std::size_t file_count() const { return files_.size(); }
  std::uint64_t opens_served() const { return opens_served_; }
  std::uint64_t pages_written_back() const { return pages_written_back_; }

  // Receiver.
  void HandleMessage(Message msg) override;
  const char* receiver_name() const override { return "file-server"; }

 private:
  void ServeOpen(const Message& msg);
  void ServeWriteBack(Message msg);

  HostEnv* env_;
  PortId port_;
  SegmentBacker backer_;
  std::map<std::string, Segment*> files_;
  std::map<std::uint64_t, std::string> backed_files_;  // segment id -> name
  std::uint64_t opens_served_ = 0;
  std::uint64_t pages_written_back_ = 0;
};

// Client-side helper: opens `name` against a FileServer and maps the whole
// file at `base` in `space` — directly when the server is local, imaginary
// (copy-on-reference) when it is remote.
class FileClient : public Receiver {
 public:
  FileClient(HostEnv* env, PortId server_port);

  void Start();

  struct OpenResult {
    bool ok = false;
    ByteCount size = 0;
    bool lazy = false;  // mapped imaginary (remote server)
  };
  using OpenDone = std::function<void(OpenResult)>;

  // Opens and maps; `done` runs when the mapping is installed.
  void OpenAndMap(const std::string& name, AddressSpace* space, Addr base, OpenDone done);

  // Ships `pages` (file-relative) of dirty data back to the server.
  using FlushDone = std::function<void(bool ok)>;
  void WriteBack(const std::string& name, AddressSpace* space, Addr base,
                 const std::vector<PageIndex>& file_pages, FlushDone done);

  // Receiver: open replies / write-back acks.
  void HandleMessage(Message msg) override;
  const char* receiver_name() const override { return "file-client"; }

 private:
  struct PendingOpen {
    AddressSpace* space;
    Addr base;
    OpenDone done;
  };

  HostEnv* env_;
  PortId server_port_;
  PortId reply_port_;
  std::uint64_t next_request_ = 1;
  std::map<std::uint64_t, PendingOpen> pending_opens_;
  std::map<std::uint64_t, FlushDone> pending_flushes_;
};

}  // namespace accent

#endif  // SRC_FS_FILE_SERVICE_H_
