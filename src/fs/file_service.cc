#include "src/fs/file_service.h"

#include <utility>

#include "src/base/logging.h"

namespace accent {
namespace {

// CPU cost of serving an open (directory lookup, map preparation).
constexpr SimDuration kOpenService = Ms(12);
// CPU cost of applying one written-back page.
constexpr SimDuration kWriteBackPerPage = Ms(1);

}  // namespace

FileServer::FileServer(HostEnv* env)
    : env_(env),
      backer_(env->id, env->sim, env->costs, env->fabric, env->segments,
              CpuWork::kProcess, "file-backer") {
  ACCENT_EXPECTS(env != nullptr && env->complete());
}

void FileServer::Start() {
  ACCENT_EXPECTS(!port_.valid()) << " file server started twice";
  ACCENT_CHECK(!env_->diskless)
      << " host " << env_->id << " is diskless and cannot anchor file backing";
  port_ = env_->fabric->AllocatePort(env_->id, this, "file-server");
  backer_.Start();
}

Segment* FileServer::CreateFile(const std::string& name, ByteCount size, std::uint64_t seed) {
  ACCENT_EXPECTS(size > 0 && size % kPageSize == 0);
  ACCENT_EXPECTS(files_.count(name) == 0) << " file exists: " << name;
  Segment* segment = env_->segments->CreateReal(size, "file:" + name);
  if (seed != 0) {
    for (PageIndex p = 0; p < segment->page_count(); ++p) {
      segment->StorePage(p, MakePatternPage(seed + p));
    }
  }
  files_[name] = segment;
  return segment;
}

Segment* FileServer::Find(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second;
}

void FileServer::HandleMessage(Message msg) {
  if (msg.op != MsgOp::kUser) {
    ACCENT_LOG(kDebug) << "file server ignoring " << MsgOpName(msg.op);
    return;
  }
  // Dispatch on the FsOp selector.
  if (const auto* open = std::any_cast<FsOpenRequest>(&msg.body)) {
    (void)open;
    ServeOpen(msg);
    return;
  }
  if (std::any_cast<FsWriteBack>(&msg.body) != nullptr) {
    ServeWriteBack(std::move(msg));
    return;
  }
  ACCENT_LOG(kDebug) << "file server: unrecognised user message";
}

void FileServer::ServeOpen(const Message& msg) {
  const auto& request = msg.BodyAs<FsOpenRequest>();
  ++opens_served_;

  FsOpenReply reply;
  reply.request_id = request.request_id;
  Segment* file = Find(request.name);
  if (file != nullptr) {
    reply.found = true;
    reply.size = file->size();
    reply.local_segment = file->id();
    // Back the file lazily; every open adds a reference so one client's
    // death never retires a file other clients still map.
    reply.iou = backer_.Back(file);
    backed_files_[file->id().value] = request.name;
  }

  Message response;
  response.dest = request.reply_port;
  response.op = MsgOp::kUser;
  response.inline_bytes = 64;
  response.body = reply;
  env_->cpu->Submit(CpuWork::kProcess, kOpenService,
                    [this, response = std::move(response)]() mutable {
                      Result<void> sent = env_->fabric->Send(env_->id, std::move(response));
                      if (!sent.ok()) {
                        ACCENT_LOG(kDebug) << "open reply dropped: " << sent.error().message;
                      }
                    });
}

void FileServer::ServeWriteBack(Message msg) {
  const auto& request = msg.BodyAs<FsWriteBack>();
  Segment* file = Find(request.name);

  FsWriteBackAck ack;
  ack.request_id = request.request_id;
  SimDuration apply_cost = SimDuration::zero();
  if (file != nullptr && !msg.regions.empty()) {
    for (const MemoryRegion& region : msg.regions) {
      if (region.mem_class != MemClass::kReal) {
        continue;
      }
      const PageIndex first = PageOf(region.base);
      for (PageIndex i = 0; i < region.page_count(); ++i) {
        if (first + i < file->page_count()) {
          file->StorePage(first + i, region.pages[i]);
          ++ack.pages_written;
        }
      }
    }
    ack.ok = true;
    pages_written_back_ += ack.pages_written;
    apply_cost = kWriteBackPerPage * static_cast<std::int64_t>(ack.pages_written);
    // The new contents also go to the local disk.
    if (ack.pages_written > 0) {
      env_->disk->Write(ack.pages_written, nullptr);
    }
  }

  Message response;
  response.dest = request.reply_port;
  response.op = MsgOp::kUser;
  response.inline_bytes = 32;
  response.body = ack;
  env_->cpu->Submit(CpuWork::kProcess, kOpenService + apply_cost,
                    [this, response = std::move(response)]() mutable {
                      Result<void> sent = env_->fabric->Send(env_->id, std::move(response));
                      if (!sent.ok()) {
                        ACCENT_LOG(kDebug) << "write-back ack dropped: " << sent.error().message;
                      }
                    });
}

FileClient::FileClient(HostEnv* env, PortId server_port)
    : env_(env), server_port_(server_port) {
  ACCENT_EXPECTS(env != nullptr && env->complete());
}

void FileClient::Start() {
  ACCENT_EXPECTS(!reply_port_.valid()) << " file client started twice";
  reply_port_ = env_->fabric->AllocatePort(env_->id, this, "file-client");
}

void FileClient::OpenAndMap(const std::string& name, AddressSpace* space, Addr base,
                            OpenDone done) {
  ACCENT_EXPECTS(space != nullptr && done != nullptr);
  ACCENT_EXPECTS(reply_port_.valid()) << " client not started";
  const std::uint64_t id = next_request_++;
  pending_opens_[id] = PendingOpen{space, base, std::move(done)};

  FsOpenRequest request;
  request.request_id = id;
  request.name = name;
  request.reply_port = reply_port_;

  Message msg;
  msg.dest = server_port_;
  msg.op = MsgOp::kUser;
  msg.inline_bytes = 64 + name.size();
  msg.body = request;
  Result<void> sent = env_->fabric->Send(env_->id, std::move(msg));
  if (!sent.ok()) {
    PendingOpen pending = std::move(pending_opens_.at(id));
    pending_opens_.erase(id);
    pending.done(OpenResult{});
  }
}

void FileClient::WriteBack(const std::string& name, AddressSpace* space, Addr base,
                           const std::vector<PageIndex>& file_pages, FlushDone done) {
  ACCENT_EXPECTS(space != nullptr && done != nullptr);
  const std::uint64_t id = next_request_++;
  pending_flushes_[id] = std::move(done);

  FsWriteBack request;
  request.request_id = id;
  request.name = name;
  request.reply_port = reply_port_;

  Message msg;
  msg.dest = server_port_;
  msg.op = MsgOp::kUser;
  msg.no_ious = true;  // written data must physically reach the server
  msg.inline_bytes = 64 + name.size();
  msg.body = request;
  // One region per contiguous run of dirty pages, in file coordinates.
  std::size_t i = 0;
  while (i < file_pages.size()) {
    std::size_t j = i + 1;
    while (j < file_pages.size() && file_pages[j] == file_pages[j - 1] + 1) {
      ++j;
    }
    std::vector<PageRef> pages;
    pages.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) {
      pages.push_back(space->ReadPage(PageOf(base) + file_pages[k]));
    }
    msg.regions.push_back(MemoryRegion::Data(PageBase(file_pages[i]), std::move(pages)));
    i = j;
  }

  Result<void> sent = env_->fabric->Send(env_->id, std::move(msg));
  if (!sent.ok()) {
    FlushDone pending = std::move(pending_flushes_.at(id));
    pending_flushes_.erase(id);
    pending(false);
  }
}

void FileClient::HandleMessage(Message msg) {
  if (const auto* reply = std::any_cast<FsOpenReply>(&msg.body)) {
    auto it = pending_opens_.find(reply->request_id);
    if (it == pending_opens_.end()) {
      return;
    }
    PendingOpen pending = std::move(it->second);
    pending_opens_.erase(it);

    OpenResult result;
    result.ok = reply->found;
    result.size = reply->size;
    if (!reply->found) {
      pending.done(result);
      return;
    }

    const HostId server_home = env_->fabric->HomeOf(server_port_);
    if (server_home == env_->id) {
      // Local file: map the segment directly (disk-backed RealMem).
      Segment* segment = env_->segments->Find(reply->local_segment);
      ACCENT_CHECK(segment != nullptr);
      pending.space->MapReal(pending.base, pending.base + reply->size, segment, 0,
                             /*copy_on_write=*/true);
    } else {
      // Remote file: whole-file copy-on-reference via the server's backer.
      result.lazy = true;
      Segment* standin =
          env_->segments->CreateImaginary(reply->size, reply->iou, "file-standin");
      pending.space->MapImaginary(pending.base, pending.base + reply->size, standin, 0);
    }
    pending.done(result);
    return;
  }
  if (const auto* ack = std::any_cast<FsWriteBackAck>(&msg.body)) {
    auto it = pending_flushes_.find(ack->request_id);
    if (it == pending_flushes_.end()) {
      return;
    }
    FlushDone done = std::move(it->second);
    pending_flushes_.erase(it);
    done(ack->ok);
    return;
  }
  ACCENT_LOG(kDebug) << "file client: unrecognised reply";
}

}  // namespace accent
