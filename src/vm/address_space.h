// Sparse process address spaces.
//
// An Accent process addresses up to 4 GB; Lisp processes validate all of it
// at birth. Layout is therefore interval-based: a mapping node covers any
// range at O(1) cost, and only pages that have actually been materialised
// (written zero-fill pages, copy-on-write copies, fetched imaginary pages,
// migrated-in data) consume real storage in the private page store.
//
// Two structures are maintained side by side:
//   - mappings_: where each range's data *originates* (a segment + offset,
//     zero-fill, or an imaginary backing) — fixed at map time;
//   - amap_:     the *current* accessibility of each page (section 2.3),
//     which faults update at page granularity (an ImagMem page becomes
//     RealMem once fetched; a RealZeroMem page becomes RealMem once
//     touched).
//
// The address space is the data plane only: it never charges simulated
// time. The Pager (pager.h) drives faults and owns all timing.
#ifndef SRC_VM_ADDRESS_SPACE_H_
#define SRC_VM_ADDRESS_SPACE_H_

#include <map>
#include <set>
#include <vector>

#include "src/base/interval_map.h"
#include "src/base/page_data.h"
#include "src/base/page_ref.h"
#include "src/base/page_store.h"
#include "src/base/types.h"
#include "src/ipc/message.h"
#include "src/vm/amap.h"
#include "src/vm/dirty_bitmap.h"
#include "src/vm/segment.h"

namespace accent {

class AddressSpace {
 public:
  AddressSpace(SpaceId id, HostId host) : id_(id), host_(host) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  SpaceId id() const { return id_; }
  HostId host() const { return host_; }
  void set_host(HostId host) { host_ = host; }

  // --- layout -----------------------------------------------------------------
  // Validates [begin, end) as zero-filled memory (RealZeroMem). The range
  // must be page-aligned and previously BadMem.
  void Validate(Addr begin, Addr end);

  // Maps [begin, end) to a real segment (program image, file) at
  // `seg_offset`. `copy_on_write` shares the segment pages until written.
  void MapReal(Addr begin, Addr end, Segment* segment, ByteCount seg_offset,
               bool copy_on_write);

  // Maps [begin, end) to an imaginary segment (its IouRef names the backer).
  void MapImaginary(Addr begin, Addr end, Segment* segment, ByteCount seg_offset);

  void Unmap(Addr begin, Addr end);

  // --- accessibility ------------------------------------------------------------
  const AMap& amap() const { return amap_; }
  MemClass ClassOf(Addr addr) const { return amap_.ClassOf(addr); }

  struct ImagTarget {
    IouRef iou;               // backing port + backer segment id
    ByteCount backer_offset;  // page-aligned offset within the backer object
  };
  // Backing target for an ImagMem page. Precondition: ClassOf is kImag.
  ImagTarget ImagTargetOf(Addr addr) const;

  // Length (in pages, up to max_pages) of the run of still-imaginary pages
  // starting at `first` that map contiguously into the same backer.
  PageIndex ImagRunLength(PageIndex first, PageIndex max_pages) const;

  // --- data plane ------------------------------------------------------------------
  // Reads the current contents of a page as a shared reference (no byte
  // copy). Precondition: the page is not ImagMem (fetch it through the
  // pager first).
  PageRef ReadPage(PageIndex page) const;
  std::uint8_t ReadByte(Addr addr) const;

  // Writes a byte into the private store. Precondition: the page is private
  // (the pager materialises pages before a write completes). If the page's
  // payload is shared, the write clones it first (copy-on-write).
  void WriteByte(Addr addr, std::uint8_t value);

  // Installs page contents materialised by the pager (zero-fill, COW copy,
  // imaginary fetch, migration insert) and reclassifies the page RealMem.
  void InstallPage(PageIndex page, PageRef data);

  bool HasPrivatePage(PageIndex page) const { return private_pages_.Contains(page); }

  // True when writes to `page` must copy from an origin segment first.
  bool NeedsCopyOnWrite(PageIndex page) const;

  // --- statistics (Table 4-1 / 4-3 inputs) -------------------------------------------
  ByteCount RealBytes() const { return amap_.BytesOf(MemClass::kReal); }
  ByteCount RealZeroBytes() const { return amap_.BytesOf(MemClass::kRealZero); }
  ByteCount ImagBytes() const { return amap_.BytesOf(MemClass::kImag); }
  ByteCount TotalValidatedBytes() const { return amap_.TotalMappedBytes(); }
  std::size_t map_entries() const { return amap_.entry_count(); }

  void NoteTouched(PageIndex page) { touched_.insert(page); }
  const std::set<PageIndex>& touched_pages() const { return touched_; }

  // --- write tracking (pre-copy migration support) -----------------------------
  // Pages written since the last MarkAllClean(), in ascending order. The
  // iterative pre-copy rounds (Theimer's V system, section 5 of the
  // paper; docs/INTERNALS.md section 13) re-ship exactly these.
  std::vector<PageIndex> DirtyPages() const { return dirty_since_mark_.ToVector(); }
  void MarkAllClean() { dirty_since_mark_.Clear(); }
  std::size_t dirty_count() const { return dirty_since_mark_.count(); }
  bool IsDirty(PageIndex page) const { return dirty_since_mark_.Test(page); }

  // Pre-copy arms tracking for the life of the transfer. While armed, the
  // first write to a clean page is an intercepted write fault — the real
  // kernel would take a protection trap there to set the bitmap bit — and
  // the pager charges it. Disarmed spaces stay byte-identical to the seed.
  void ArmWriteTracking() { write_tracking_ = true; }
  void DisarmWriteTracking() { write_tracking_ = false; }
  bool write_tracking() const { return write_tracking_; }
  // True when a write to `addr` would trip the tracking trap right now: the
  // page is clean and was otherwise writable, so the armed write-protect bit
  // forces an extra fault. Non-resident writes set the bit inside the fault
  // handler they are already in and trip nothing extra.
  bool WriteIsTracked(Addr addr) const {
    return write_tracking_ && !dirty_since_mark_.Test(PageOf(addr));
  }
  void NoteTrackedWriteFault() { ++tracked_write_faults_; }
  std::uint64_t tracked_write_faults() const { return tracked_write_faults_; }

  // --- content-hash hints (docs/INTERNALS.md §15) ------------------------------
  // Sparse per-page hints copied off the RIMAS hash riders at insertion:
  // the content hash the owed page *will* have once pulled. The pager's
  // hash-probe fault walk consults these; a page without a hint always
  // takes the classic origin pull. Hints are advisory — content identity is
  // re-verified against actual bytes wherever a hint is acted on.
  void SetPageHashHint(PageIndex page, const PageHash& hash) { hash_hints_[page] = hash; }
  const PageHash* HashHintOf(PageIndex page) const {
    auto it = hash_hints_.find(page);
    return it != hash_hints_.end() ? &it->second : nullptr;
  }
  std::size_t hash_hint_count() const { return hash_hints_.size(); }

  // Distinct imaginary backers still referenced (for death notification).
  std::vector<IouRef> ImaginaryBackers() const;

  // Chain collapse: repoints every mapped imaginary segment backed by
  // `from` (matched on port + segment) at `to`, keeping each segment's
  // original offset — both objects are VA-indexed, so offsets carry over.
  // Returns the number of distinct segments rebound.
  std::size_t RebindBackers(const IouRef& from, const IouRef& to);

  // All RealMem pages in ascending order (excision walks these).
  std::vector<PageIndex> RealPages() const;

 private:
  struct MappingValue {
    Segment* segment = nullptr;  // null => zero-fill validation
    Addr va_anchor = 0;          // segment offset of va = seg_anchor + (va - va_anchor)
    ByteCount seg_anchor = 0;
    bool copy_on_write = false;

    bool operator==(const MappingValue& o) const {
      return segment == o.segment && va_anchor == o.va_anchor &&
             seg_anchor == o.seg_anchor && copy_on_write == o.copy_on_write;
    }
  };

  ByteCount SegOffsetOf(const MappingValue& mapping, Addr addr) const {
    return mapping.seg_anchor + (addr - mapping.va_anchor);
  }

  // Discards private page contents in [begin, end): a fresh mapping or an
  // unmap supersedes whatever the process had materialised there.
  void DropPrivatePages(Addr begin, Addr end);

  SpaceId id_;
  HostId host_;
  IntervalMap<MappingValue> mappings_;
  AMap amap_;
  // Zero pages are *present* entries here (a materialised zero-fill page is
  // distinct from an untouched one), unlike the sparse Segment store.
  PageStore private_pages_;
  std::set<PageIndex> touched_;
  DirtyBitmap dirty_since_mark_;
  std::map<PageIndex, PageHash> hash_hints_;
  bool write_tracking_ = false;
  std::uint64_t tracked_write_faults_ = 0;
};

}  // namespace accent

#endif  // SRC_VM_ADDRESS_SPACE_H_
