#include "src/vm/segment.h"

#include "src/sim/simulator.h"

namespace accent {

void Segment::StorePage(PageIndex rel_page, PageRef data) {
  ACCENT_EXPECTS(kind_ == SegmentKind::kReal);
  ACCENT_EXPECTS(rel_page < page_count());
  if (data.IsZero()) {
    pages_.Erase(rel_page);  // zero pages stay sparse
    return;
  }
  pages_.Store(rel_page, std::move(data));
}

const PageRef* Segment::FindPage(PageIndex rel_page) const {
  ACCENT_EXPECTS(kind_ == SegmentKind::kReal);
  return pages_.Find(rel_page);
}

PageRef Segment::ReadPage(PageIndex rel_page) const {
  const PageRef* found = FindPage(rel_page);
  return found == nullptr ? PageRef{} : *found;
}

SegmentTable::SegmentTable(Simulator* sim) : sim_(*sim) { ACCENT_EXPECTS(sim != nullptr); }

Segment* SegmentTable::CreateReal(ByteCount size, std::string debug_name) {
  const SegmentId id(sim_.AllocateId());
  auto segment = std::make_unique<Segment>(id, SegmentKind::kReal, size, std::move(debug_name));
  Segment* raw = segment.get();
  segments_[id.value] = std::move(segment);
  return raw;
}

Segment* SegmentTable::CreateImaginary(ByteCount size, IouRef iou, std::string debug_name) {
  const SegmentId id(sim_.AllocateId());
  auto segment =
      std::make_unique<Segment>(id, SegmentKind::kImaginary, size, std::move(debug_name));
  segment->SetBacking(iou);
  Segment* raw = segment.get();
  segments_[id.value] = std::move(segment);
  return raw;
}

Segment* SegmentTable::Find(SegmentId id) const {
  auto it = segments_.find(id.value);
  return it == segments_.end() ? nullptr : it->second.get();
}

void SegmentTable::Destroy(SegmentId id) { segments_.erase(id.value); }

}  // namespace accent
