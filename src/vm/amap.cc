#include "src/vm/amap.h"

#include <vector>

namespace accent {

const char* MemClassName(MemClass mem_class) {
  switch (mem_class) {
    case MemClass::kBad: return "BadMem";
    case MemClass::kRealZero: return "RealZeroMem";
    case MemClass::kReal: return "RealMem";
    case MemClass::kImag: return "ImagMem";
  }
  return "?";
}

void AMap::Set(Addr begin, Addr end, MemClass mem_class) {
  if (mem_class == MemClass::kBad) {
    map_.Erase(begin, end);
    return;
  }
  map_.Assign(begin, end, mem_class);
}

MemClass AMap::ClassOf(Addr addr) const {
  const MemClass* found = map_.Find(addr);
  return found == nullptr ? MemClass::kBad : *found;
}

bool AMap::RangeAvoids(Addr begin, Addr end, MemClass avoided) const {
  bool hit = false;
  if (avoided == MemClass::kBad) {
    return map_.Covers(begin, end);
  }
  map_.ForEachIn(begin, end, [&](const Interval& iv) {
    if (iv.value == avoided) {
      hit = true;
    }
  });
  return !hit;
}

ByteCount AMap::BytesOf(MemClass mem_class) const {
  ByteCount total = 0;
  map_.ForEach([&](const Interval& iv) {
    if (iv.value == mem_class) {
      total += iv.size();
    }
  });
  return total;
}

bool operator==(const AMap& a, const AMap& b) {
  std::vector<AMap::Interval> av;
  std::vector<AMap::Interval> bv;
  a.ForEach([&](const AMap::Interval& iv) { av.push_back(iv); });
  b.ForEach([&](const AMap::Interval& iv) { bv.push_back(iv); });
  if (av.size() != bv.size()) {
    return false;
  }
  for (std::size_t i = 0; i < av.size(); ++i) {
    if (av[i].begin != bv[i].begin || av[i].end != bv[i].end || av[i].value != bv[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace accent
