// SegmentBacker: a user-level memory manager for imaginary segments.
//
// Any process may create an imaginary segment based on one of its ports and
// promise to deliver the data on demand (section 2.2) — the copy-on-
// reference facility is generic, not migration-specific. SegmentBacker is
// that pattern as a reusable component: it owns real segments (page stores)
// and answers Imaginary Read Requests against them, retiring objects when
// their Imaginary Segment Death notices arrive. The NetMsgServer's IOU
// cache and the examples' lazy file server both build on it.
//
// Backing ownership is itself transferable (multi-hop re-migration): a
// backer can export one of its objects — page store contents and the
// outstanding reference — to a peer backer with ExportObject, then retire
// the local object into a forwarding stub with RetireToStub. The stub
// redirects Imaginary Read Requests (and Segment Death notices) that were
// already in flight when ownership moved, so no client ever observes the
// handoff.
#ifndef SRC_VM_BACKER_H_
#define SRC_VM_BACKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "src/base/types.h"
#include "src/host/cpu.h"
#include "src/ipc/fabric.h"
#include "src/sim/simulator.h"
#include "src/vm/segment.h"

namespace accent {

class Tracer;

class SegmentBacker : public Receiver {
 public:
  // `work_category` is where this backer's service time is attributed
  // (kNetMsgServer for the NetMsgServer's cache, kProcess for user code).
  SegmentBacker(HostId host, Simulator* sim, const CostTable* costs, IpcFabric* fabric,
                SegmentTable* segments, CpuWork work_category, std::string name);

  // Allocates the backing port.
  void Start();
  PortId port() const { return port_; }
  HostId host() const { return host_; }

  // Registers `segment` (kReal, owned by the SegmentTable) as a backed
  // object and returns the IouRef that names it. Each Back() of the same
  // segment adds a reference: the object is retired only when Imaginary
  // Segment Death notices have balanced every reference ("the backing
  // process continues to field page request messages ... until all
  // references to it die out", section 2.2).
  IouRef Back(Segment* segment);

  // Adds a reference to an already-backed object (e.g. a second client
  // mapping the same exported file).
  void AddRef(SegmentId segment);

  std::uint64_t RefCount(SegmentId segment) const;

  // Creates a backed object from raw pages at the given base page offset.
  // The PageData overload wraps each page into a PageRef (a move, no copy).
  IouRef BackPages(ByteCount object_size, ByteCount first_page_offset,
                   std::vector<PageRef> pages, const std::string& name);
  IouRef BackPages(ByteCount object_size, ByteCount first_page_offset,
                   std::vector<PageData> pages, const std::string& name);

  // Creates a backed object of `object_size` from sparse pages keyed by
  // page index within the object. Pages absent from `pages` read as zero.
  IouRef BackSparsePages(ByteCount object_size,
                         std::vector<std::pair<PageIndex, PageRef>> pages,
                         const std::string& name);
  IouRef BackSparsePages(ByteCount object_size,
                         std::vector<std::pair<PageIndex, PageData>> pages,
                         const std::string& name);

  // --- backing-ownership transfer ----------------------------------------
  // Ships `segment`'s stored pages to the peer backer named by `target`
  // (a kBackingHandoff message; the peer merges them into its own object
  // `target.segment`, newer pages overwriting stale ones). `on_ack` fires
  // when the peer acknowledges the merge. The local object keeps serving
  // reads until RetireToStub — requests that race the handoff see the
  // still-live copy.
  void ExportObject(SegmentId segment, const IouRef& target,
                    std::function<void(bool accepted)> on_ack);

  // Drops the local object (destroying its segment if backer-owned) and
  // installs a forwarding stub: Imaginary Read Requests and Segment Death
  // notices still addressed to `segment` are redirected to `target`.
  // Tolerates the object having already been retired by a racing death
  // notice (the client died before learning of the new owner) — the stub
  // is installed regardless.
  void RetireToStub(SegmentId segment, const IouRef& target);

  bool Owns(SegmentId segment) const { return objects_.count(segment.value) != 0; }
  bool IsStub(SegmentId segment) const { return stubs_.count(segment.value) != 0; }
  std::size_t object_count() const { return objects_.size(); }
  std::size_t stub_count() const { return stubs_.size(); }
  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t pages_served() const { return pages_served_; }
  // Content-cache confirm probes (docs/INTERNALS.md §15): pages whose
  // ownership + hash were acked without shipping payload, and probes that
  // mismatched and were answered with the full payload instead.
  std::uint64_t pages_confirmed() const { return pages_confirmed_; }
  std::uint64_t confirm_mismatches() const { return confirm_mismatches_; }
  std::uint64_t deaths_received() const { return deaths_received_; }
  std::uint64_t duplicate_deaths() const { return duplicate_deaths_; }
  std::uint64_t deaths_during_export() const { return deaths_during_export_; }
  std::uint64_t handoffs_sent() const { return handoffs_sent_; }
  std::uint64_t handoffs_received() const { return handoffs_received_; }
  std::uint64_t handoff_pages_sent() const { return handoff_pages_sent_; }
  std::uint64_t handoff_pages_merged() const { return handoff_pages_merged_; }
  std::uint64_t requests_forwarded() const { return requests_forwarded_; }
  std::uint64_t deaths_forwarded() const { return deaths_forwarded_; }

  // Receiver.
  void HandleMessage(Message msg) override;
  const char* receiver_name() const override { return name_.c_str(); }

 private:
  void ServeRead(const Message& msg);
  void MergeHandoff(Message msg);
  // Re-sends a stub-hit message to the stub's target (rewriting the
  // addressed segment). Returns true if a stub matched.
  bool ForwardThroughStub(const Message& msg);

  HostId host_;
  Simulator& sim_;
  const CostTable& costs_;
  IpcFabric& fabric_;
  SegmentTable& segments_;
  CpuWork work_category_;
  std::string name_;
  PortId port_;
  struct BackedObject {
    Segment* segment = nullptr;
    std::uint64_t refs = 0;
    // Objects the backer itself created (BackPages / BackSparsePages) are
    // destroyed when the last reference dies; externally-owned segments
    // (exported files, workload images) are merely dropped from service.
    bool owns_segment = false;
  };
  std::map<std::uint64_t, BackedObject> objects_;
  // Forwarding stubs left behind by RetireToStub: old object id -> new
  // owner. Kept for the life of the backer (a stub is a few words).
  std::map<std::uint64_t, IouRef> stubs_;
  // Objects fully retired through the normal death path. Distinguishes a
  // benign duplicate death (lossy wire re-delivery) from a genuinely
  // unbalanced one, which is a protocol error and CHECK-fails.
  std::set<std::uint64_t> retired_;
  // Exports awaiting their kBackingHandoffAck, keyed by source segment.
  std::map<std::uint64_t, std::function<void(bool)>> pending_exports_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t pages_served_ = 0;
  std::uint64_t pages_confirmed_ = 0;
  std::uint64_t confirm_mismatches_ = 0;
  std::uint64_t deaths_received_ = 0;
  std::uint64_t duplicate_deaths_ = 0;
  std::uint64_t deaths_during_export_ = 0;
  std::uint64_t handoffs_sent_ = 0;
  std::uint64_t handoffs_received_ = 0;
  std::uint64_t handoff_pages_sent_ = 0;
  std::uint64_t handoff_pages_merged_ = 0;
  std::uint64_t requests_forwarded_ = 0;
  std::uint64_t deaths_forwarded_ = 0;
};

}  // namespace accent

#endif  // SRC_VM_BACKER_H_
