// The Pager/Scheduler process of one host.
//
// All page faults resolve here (section 2.2/2.3):
//   FillZero  — validated-but-untouched page: reserve a frame, zero it, map
//               it; the disk is never consulted.
//   Disk      — RealMem page not resident: fetch from the local disk.
//   CopyOnWrite — first write to a shared segment page: copy 512 bytes.
//   Imaginary — ImagMem page: send an Imaginary Read Request through the
//               IPC system to the backing port and wait for the reply;
//               optionally ask for `prefetch` additional contiguous pages.
//
// The pager is a Receiver: Imaginary Read Replies arrive on its port.
// Fetched pages are installed as RealMem with the local disk as their new
// backing store ("page-outs for imaginary data are performed to the local
// disk at the site that touched the page").
#ifndef SRC_VM_PAGER_H_
#define SRC_VM_PAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/base/types.h"
#include "src/host/cpu.h"
#include "src/host/disk.h"
#include "src/host/physical_memory.h"
#include "src/ipc/fabric.h"
#include "src/sim/simulator.h"
#include "src/vm/address_space.h"

namespace accent {

class PageService;

enum class FaultKind {
  kNone,  // resident hit
  kFillZero,
  kDisk,
  kCopyOnWrite,
  kImaginary,
  kAddressError,  // BadMem reference: the debugger would be invoked
};

// Short lower-case label ("fillzero", "disk", ...) used in traces and logs.
const char* FaultKindName(FaultKind kind);

struct AccessOutcome {
  FaultKind fault = FaultKind::kNone;
  PageIndex page = 0;
  bool prefetch_hit = false;  // resident because an earlier fault prefetched it
  // The access could not be satisfied: a BadMem reference, or the backing
  // port of an imaginary page has died. The process cannot proceed past
  // this reference (section 2.3's "analyze and properly terminate").
  bool failed = false;
};

struct PagerStats {
  std::uint64_t resident_hits = 0;
  std::uint64_t fillzero_faults = 0;
  std::uint64_t disk_faults = 0;
  std::uint64_t cow_faults = 0;
  std::uint64_t imag_faults = 0;
  std::uint64_t imag_pages_fetched = 0;   // total pages returned by backers
  std::uint64_t prefetched_pages = 0;     // beyond the faulted page
  std::uint64_t prefetch_hits = 0;        // later touches served by prefetch
  std::uint64_t pageouts = 0;             // dirty evictions written to disk
  std::uint64_t address_errors = 0;       // BadMem references
  std::uint64_t failed_fetches = 0;       // imaginary faults with dead backers

  // --- content-addressed page service (docs/INTERNALS.md §15) -------------
  // All zero unless the testbed wires a PageService into this pager; the
  // classic fault path never touches them.
  std::uint64_t cache_local_hits = 0;        // faults fully served from this host's cache
  std::uint64_t cache_pages_confirmed = 0;   // pages installed on a confirm ack (no payload)
  std::uint64_t cache_pages_from_holders = 0;  // payload pages pulled from non-origin holders
  std::uint64_t cache_holder_misses = 0;     // holder pulls answered "miss" (origin fallback)
  std::uint64_t cache_holder_failovers = 0;  // holder pulls that died (host dropped, origin fallback)
  std::uint64_t cache_pull_pages_served = 0;  // pages this host served to other pagers' pulls
  std::uint64_t cache_hash_rejects = 0;      // holder payloads rejected: bytes != requested hash
};

class Pager : public Receiver {
 public:
  using AccessDone = std::function<void(const AccessOutcome&)>;

  Pager(HostId host, Simulator* sim, const CostTable* costs, IpcFabric* fabric, Disk* disk,
        PhysicalMemory* memory);

  // Allocates the pager's service port. Must run before any imaginary fault.
  void Start();

  PortId port() const { return port_; }
  HostId host() const { return host_; }

  // Pages (beyond the faulted one) requested per imaginary fault.
  void set_prefetch_pages(std::uint32_t pages) { prefetch_pages_ = pages; }
  std::uint32_t prefetch_pages() const { return prefetch_pages_; }

  // Arms a per-fetch timeout (costs.pager_fetch_timeout) that fails any
  // imaginary fetch whose reply never arrives. Off by default: lossless
  // testbeds must not carry extra events; fault-injection testbeds enable
  // it so a crashed backer can never strand a process.
  void set_fetch_timeout_enabled(bool enabled) { fetch_timeout_enabled_ = enabled; }

  // Wires the host's content-addressed PageService (docs/INTERNALS.md §15).
  // Null (the default) is the classic protocol: no hashes are consulted or
  // computed and every imaginary fault pulls from its backing port. With a
  // service wired, fully-hinted faults walk cache tiers first and this
  // pager additionally answers kCachePull probes from peer pagers.
  void set_page_service(PageService* service) { page_service_ = service; }
  PageService* page_service() const { return page_service_; }

  // Resolves a touch of `addr` by `space`; `done` runs once the page is
  // resident (and privately owned, for writes). Charges all fault costs.
  void Access(AddressSpace* space, Addr addr, bool write, AccessDone done);

  // Sends Imaginary Segment Death notices for every backer `space` still
  // references (process termination / address-space teardown).
  void NotifySpaceDeath(AddressSpace* space);

  // Receiver: Imaginary Read Replies.
  void HandleMessage(Message msg) override;
  const char* receiver_name() const override { return "pager"; }

  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats{}; }

 private:
  struct Waiter {
    PageIndex page;
    bool write;
    AccessDone done;
  };
  // Which tier of the hash-probe fault walk a fetch is currently on
  // (docs/INTERNALS.md §15). Classic faults live their whole life on
  // kOrigin; probe tiers fall back to kOrigin on any setback.
  enum class FetchTier {
    kOrigin,        // pull payload from the backing port (the classic path)
    kLocalConfirm,  // bytes cached locally; origin only acks ownership+hash
    kHolderPull,    // pull payload from a nearer directory holder
  };
  struct PendingFetch {
    AddressSpace* space = nullptr;
    std::vector<PageIndex> va_pages;  // va_pages[i] receives returned page i
    std::vector<Waiter> waiters;
    FetchTier tier = FetchTier::kOrigin;
    std::uint64_t attempt = 0;  // guards timeout timers across fallbacks
    AddressSpace::ImagTarget target;   // original backing target (fallback reissue)
    std::vector<PageHash> hashes;      // hints for the run (probe tiers only)
    std::vector<PageRef> cached_pages;  // payloads to install on a confirm ack
    HostId holder;                     // probed holder (kHolderPull only)
  };

  // Makes the page resident, accounting dirty evictions (page-outs).
  void MakeResident(AddressSpace* space, PageIndex page, bool dirty);

  // Ensures a private copy exists for writes; may charge a COW fault.
  // Returns the extra CPU charged.
  SimDuration ResolveWriteCopy(AddressSpace* space, PageIndex page, AccessOutcome* outcome);

  void StartImaginaryFault(AddressSpace* space, PageIndex page, bool write, AccessDone done);

  // Builds and sends the read request for `request_id` according to its
  // current tier, charging the pager CPU and (re-)arming the timeout.
  void DispatchFetch(std::uint64_t request_id);

  // A fetch came back without pages: a holder miss/crash falls back to the
  // origin; anything else fails the fetch like the classic protocol.
  void FetchSetback(std::uint64_t request_id, bool holder_miss);

  // Installs `pages` for a completed fetch and resumes its waiters.
  // `counted_fetched` selects between imag_pages_fetched (payload crossed
  // the wire) and cache_pages_confirmed (installed from the local cache).
  void CompleteFetch(PendingFetch fetch, const std::vector<PageRef>& pages,
                     bool payload_fetched);

  // Answers a peer pager's kCachePull probe from the local ContentCache.
  void ServeCachePull(const Message& msg);

  // Completes every waiter of `request_id` with a failed outcome (the
  // backing port has died: the owed memory is unrecoverable).
  void FailPendingFetch(std::uint64_t request_id);

  HostId host_;
  Simulator& sim_;
  const CostTable& costs_;
  IpcFabric& fabric_;
  Disk& disk_;
  PhysicalMemory& memory_;
  PortId port_;
  std::uint32_t prefetch_pages_ = 0;
  bool fetch_timeout_enabled_ = false;
  PageService* page_service_ = nullptr;
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, PendingFetch> pending_;
  // (space,page) currently being fetched -> request id (for waiter joining).
  std::map<std::pair<std::uint64_t, PageIndex>, std::uint64_t> in_flight_pages_;
  // Pages installed by prefetch and not yet touched (for hit accounting).
  std::set<std::pair<std::uint64_t, PageIndex>> untouched_prefetched_;
  PagerStats stats_;
};

}  // namespace accent

#endif  // SRC_VM_PAGER_H_
