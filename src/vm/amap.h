// Accessibility Maps (AMaps) — section 2.3 of the paper.
//
// An AMap answers "how far away is this memory?" for any virtual address
// range. Accent defines four distances:
//   RealZeroMem — validated, never touched; conceptually zero-filled;
//                 immediately accessible (a FillZero fault materialises it).
//   RealMem     — present in physical memory or on the local disk;
//                 moderately accessible.
//   ImagMem     — mapped to an imaginary segment; access goes through the
//                 IPC system to a backing port; distantly accessible.
//   BadMem      — not validated; infinitely distant (addressing error).
//
// AMaps guide the NetMsgServer's fragmentation (only RealMem is physically
// shipped) and let servers avoid the deadlock of touching port-backed pages
// while holding the system critical section.
#ifndef SRC_VM_AMAP_H_
#define SRC_VM_AMAP_H_

#include <cstdint>

#include "src/base/interval_map.h"
#include "src/base/types.h"

namespace accent {

enum class MemClass : std::uint8_t {
  kBad = 0,       // unmapped; represented by absence in the map
  kRealZero = 1,  // validated, untouched, zero-filled
  kReal = 2,      // data in physical memory or on local disk
  kImag = 3,      // backed by an IPC port (possibly remote)
};

const char* MemClassName(MemClass mem_class);

class AMap {
 public:
  using Interval = IntervalMap<MemClass>::Interval;

  // Records [begin, end) as `mem_class`. kBad erases the range instead
  // (absence == BadMem).
  void Set(Addr begin, Addr end, MemClass mem_class);

  // Accessibility of a single address.
  MemClass ClassOf(Addr addr) const;

  // True when every byte of [begin, end) is at least as accessible as
  // `required` (ordering: RealZero > Real > Imag > Bad by "closeness";
  // in practice callers ask "is the whole range free of ImagMem?").
  bool RangeAvoids(Addr begin, Addr end, MemClass avoided) const;

  template <typename Fn>
  void ForEachIn(Addr begin, Addr end, Fn fn) const {
    map_.ForEachIn(begin, end, fn);
  }
  template <typename Fn>
  void ForEach(Fn fn) const {
    map_.ForEach(fn);
  }

  ByteCount BytesOf(MemClass mem_class) const;
  ByteCount TotalMappedBytes() const { return map_.TotalBytes(); }
  std::size_t entry_count() const { return map_.interval_count(); }
  bool empty() const { return map_.empty(); }

  // Serialized wire footprint given a per-entry descriptor size.
  ByteCount SerializedSize(ByteCount entry_bytes) const {
    return entry_bytes * entry_count();
  }

  friend bool operator==(const AMap& a, const AMap& b);

 private:
  IntervalMap<MemClass> map_;
};

}  // namespace accent

#endif  // SRC_VM_AMAP_H_
