#include "src/vm/backer.h"

#include <utility>

#include "src/base/logging.h"
#include "src/trace/trace.h"
#include "src/vm/imag_protocol.h"

namespace accent {

SegmentBacker::SegmentBacker(HostId host, Simulator* sim, const CostTable* costs,
                             IpcFabric* fabric, SegmentTable* segments, CpuWork work_category,
                             std::string name)
    : host_(host),
      sim_(*sim),
      costs_(*costs),
      fabric_(*fabric),
      segments_(*segments),
      work_category_(work_category),
      name_(std::move(name)) {
  ACCENT_EXPECTS(sim != nullptr && costs != nullptr && fabric != nullptr && segments != nullptr);
}

void SegmentBacker::Start() {
  ACCENT_EXPECTS(!port_.valid()) << " backer started twice";
  port_ = fabric_.AllocatePort(host_, this, name_ + "-backing");
}

IouRef SegmentBacker::Back(Segment* segment) {
  ACCENT_EXPECTS(port_.valid()) << " backer not started";
  ACCENT_EXPECTS(segment != nullptr && segment->kind() == SegmentKind::kReal);
  BackedObject& object = objects_[segment->id().value];
  object.segment = segment;
  ++object.refs;
  retired_.erase(segment->id().value);  // a re-backed id is live again
  return IouRef{port_, segment->id(), 0};
}

void SegmentBacker::AddRef(SegmentId segment) {
  auto it = objects_.find(segment.value);
  ACCENT_EXPECTS(it != objects_.end()) << " AddRef of unknown object " << segment;
  ++it->second.refs;
}

std::uint64_t SegmentBacker::RefCount(SegmentId segment) const {
  auto it = objects_.find(segment.value);
  return it == objects_.end() ? 0 : it->second.refs;
}

IouRef SegmentBacker::BackPages(ByteCount object_size, ByteCount first_page_offset,
                                std::vector<PageRef> pages, const std::string& name) {
  ACCENT_EXPECTS(first_page_offset % kPageSize == 0);
  ACCENT_EXPECTS(first_page_offset + pages.size() * kPageSize <= object_size);
  Segment* segment = segments_.CreateReal(object_size, name);
  const PageIndex first = PageOf(first_page_offset);
  for (std::size_t i = 0; i < pages.size(); ++i) {
    segment->StorePage(first + i, std::move(pages[i]));
  }
  const IouRef iou = Back(segment);
  objects_.at(segment->id().value).owns_segment = true;
  return iou;
}

IouRef SegmentBacker::BackPages(ByteCount object_size, ByteCount first_page_offset,
                                std::vector<PageData> pages, const std::string& name) {
  std::vector<PageRef> refs;
  refs.reserve(pages.size());
  for (PageData& page : pages) {
    refs.emplace_back(std::move(page));
  }
  return BackPages(object_size, first_page_offset, std::move(refs), name);
}

IouRef SegmentBacker::BackSparsePages(ByteCount object_size,
                                      std::vector<std::pair<PageIndex, PageRef>> pages,
                                      const std::string& name) {
  Segment* segment = segments_.CreateReal(object_size, name);
  for (auto& [page, data] : pages) {
    ACCENT_EXPECTS(page < segment->page_count());
    segment->StorePage(page, std::move(data));
  }
  const IouRef iou = Back(segment);
  objects_.at(segment->id().value).owns_segment = true;
  return iou;
}

IouRef SegmentBacker::BackSparsePages(ByteCount object_size,
                                      std::vector<std::pair<PageIndex, PageData>> pages,
                                      const std::string& name) {
  std::vector<std::pair<PageIndex, PageRef>> refs;
  refs.reserve(pages.size());
  for (auto& [page, data] : pages) {
    refs.emplace_back(page, PageRef(std::move(data)));
  }
  return BackSparsePages(object_size, std::move(refs), name);
}

void SegmentBacker::ExportObject(SegmentId segment, const IouRef& target,
                                 std::function<void(bool accepted)> on_ack) {
  ACCENT_EXPECTS(port_.valid()) << " backer not started";
  ACCENT_EXPECTS(target.valid());
  auto it = objects_.find(segment.value);
  ACCENT_CHECK(it != objects_.end()) << " exporting unknown object " << segment;
  ACCENT_CHECK(pending_exports_.count(segment.value) == 0)
      << " object " << segment << " already mid-export";
  Segment* source = it->second.segment;

  BackingHandoff body;
  body.source_segment = segment;
  body.target_segment = target.segment;

  Message msg;
  msg.dest = target.backing_port;
  msg.reply_port = port_;
  msg.op = MsgOp::kBackingHandoff;
  msg.no_ious = true;  // ownership moves physically, never as fresh IOUs
  msg.traffic = TrafficKind::kBulkData;
  msg.inline_bytes = kBackingHandoffBodyBytes;
  msg.body = body;

  // Package the stored pages as VA-indexed runs (both ends of a handoff
  // index objects by virtual page, so indices carry over unchanged).
  std::vector<PageRef> run;
  PageIndex run_first = 0;
  auto flush = [&]() {
    if (!run.empty()) {
      msg.regions.push_back(MemoryRegion::Data(PageBase(run_first), std::move(run)));
      run.clear();
    }
  };
  source->ForEachPage([&](PageIndex page, const PageRef& ref) {
    if (!run.empty() && page != run_first + run.size()) {
      flush();
    }
    if (run.empty()) {
      run_first = page;
    }
    run.push_back(ref);  // refcount bump, no byte copy
  });
  flush();

  ++handoffs_sent_;
  handoff_pages_sent_ += source->stored_pages();
  pending_exports_[segment.value] = std::move(on_ack);
  if (Tracer* tracer = sim_.tracer()) {
    tracer->Instant(host_, TraceLane::kMigration, "handoff:export", sim_.Now(),
                     {{"segment", Json(static_cast<double>(segment.value))},
                      {"pages", Json(static_cast<double>(source->stored_pages()))}});
  }
  const CpuPriority priority =
      costs_.fault_priority_lane ? CpuPriority::kHigh : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(work_category_, costs_.backer_service,
                               [this, msg = std::move(msg)]() mutable {
                                 Result<void> sent = fabric_.Send(host_, std::move(msg));
                                 if (!sent.ok()) {
                                   ACCENT_LOG(kDebug)
                                       << "backing handoff dropped: " << sent.error().message;
                                 }
                               },
                               priority);
}

void SegmentBacker::MergeHandoff(Message msg) {
  const auto& handoff = msg.BodyAs<BackingHandoff>();
  auto it = objects_.find(handoff.target_segment.value);
  // Refuse when the target is unknown (already retired) or itself
  // mid-export: two hosts evacuating towards each other must not both
  // succeed, or their forwarding stubs would form a cycle. The rejected
  // side simply keeps its object and stays on the fault path.
  const bool accepted =
      it != objects_.end() && pending_exports_.count(handoff.target_segment.value) == 0;
  if (accepted) {
    // The handoff moves the exporter's outstanding reference along with the
    // pages: the client whose IouRefs are being rebound here now counts
    // against this object, and its (eventual) Imaginary Segment Death
    // arrives addressed to it. Without this the object retires as soon as
    // the pre-existing references drain, stranding the rebound client.
    ++it->second.refs;
    Segment* target = it->second.segment;
    std::uint64_t merged = 0;
    for (MemoryRegion& region : msg.regions) {
      ACCENT_CHECK(region.mem_class == MemClass::kReal);
      const PageIndex first = PageOf(region.base);
      for (std::size_t i = 0; i < region.pages.size(); ++i) {
        // The evacuating host's copy is newer (the process ran there), so
        // it overwrites whatever this object still holds for the page.
        target->StorePage(first + i, std::move(region.pages[i]));
        ++merged;
      }
    }
    ++handoffs_received_;
    handoff_pages_merged_ += merged;
    if (Tracer* tracer = sim_.tracer()) {
      tracer->Instant(host_, TraceLane::kMigration, "handoff:merge", sim_.Now(),
                       {{"segment", Json(static_cast<double>(handoff.target_segment.value))},
                        {"pages", Json(static_cast<double>(merged))}});
    }
  } else {
    ACCENT_LOG(kDebug) << name_ << ": handoff for unknown target object "
                       << handoff.target_segment;
  }

  BackingHandoffAck ack;
  ack.source_segment = handoff.source_segment;
  ack.accepted = accepted;

  Message response;
  response.dest = msg.reply_port;
  response.op = MsgOp::kBackingHandoffAck;
  response.traffic = TrafficKind::kControl;
  response.inline_bytes = kBackingHandoffAckBodyBytes;
  response.body = ack;
  const CpuPriority priority =
      costs_.fault_priority_lane ? CpuPriority::kHigh : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(work_category_, costs_.backer_service,
                               [this, response = std::move(response)]() mutable {
                                 Result<void> sent = fabric_.Send(host_, std::move(response));
                                 if (!sent.ok()) {
                                   ACCENT_LOG(kDebug)
                                       << "handoff ack dropped: " << sent.error().message;
                                 }
                               },
                               priority);
}

void SegmentBacker::RetireToStub(SegmentId segment, const IouRef& target) {
  ACCENT_EXPECTS(target.valid());
  ACCENT_CHECK(!(target.backing_port == port_ && target.segment == segment))
      << " stub cannot forward to itself";
  auto it = objects_.find(segment.value);
  if (it != objects_.end()) {
    // Ownership moved wholesale: the single outstanding reference now
    // belongs to the new owner's object, so no death notice is owed here.
    ACCENT_CHECK(it->second.refs == 1)
        << " retiring object " << segment << " with " << it->second.refs << " refs";
    if (it->second.owns_segment) {
      segments_.Destroy(it->second.segment->id());
    }
    objects_.erase(it);
  }
  // else: a racing death notice already retired it (client died before the
  // rebind); the stub still goes in so late requests find the new owner.
  stubs_[segment.value] = target;
  if (Tracer* tracer = sim_.tracer()) {
    tracer->Instant(host_, TraceLane::kMigration, "handoff:stub", sim_.Now(),
                     {{"segment", Json(static_cast<double>(segment.value))}});
  }
}

bool SegmentBacker::ForwardThroughStub(const Message& msg) {
  SegmentId addressed;
  if (msg.op == MsgOp::kImagReadRequest) {
    addressed = msg.BodyAs<ImagReadRequest>().segment;
  } else {
    addressed = msg.BodyAs<ImagSegmentDeath>().segment;
  }
  auto stub = stubs_.find(addressed.value);
  if (stub == stubs_.end()) {
    return false;
  }
  const IouRef& target = stub->second;

  Message forward = msg;
  forward.id = MsgId{};  // fresh message on the wire
  forward.dest = target.backing_port;
  if (msg.op == MsgOp::kImagReadRequest) {
    ImagReadRequest request = msg.BodyAs<ImagReadRequest>();
    request.segment = target.segment;  // both objects are VA-indexed
    forward.body = request;
    ++requests_forwarded_;
  } else {
    forward.body = ImagSegmentDeath{target.segment};
    ++deaths_forwarded_;
  }
  if (Tracer* tracer = sim_.tracer()) {
    tracer->Instant(host_, TraceLane::kMigration, "handoff:forward", sim_.Now(),
                     {{"op", Json(std::string(MsgOpName(msg.op)))},
                      {"segment", Json(static_cast<double>(addressed.value))}});
  }
  Result<void> sent = fabric_.Send(host_, std::move(forward));
  if (!sent.ok()) {
    ACCENT_LOG(kDebug) << "stub forward dropped: " << sent.error().message;
  }
  return true;
}

void SegmentBacker::HandleMessage(Message msg) {
  switch (msg.op) {
    case MsgOp::kImagReadRequest:
      if (objects_.count(msg.BodyAs<ImagReadRequest>().segment.value) == 0 &&
          ForwardThroughStub(msg)) {
        return;
      }
      ServeRead(msg);
      return;
    case MsgOp::kBackingHandoff:
      MergeHandoff(std::move(msg));
      return;
    case MsgOp::kBackingHandoffAck: {
      const auto& ack = msg.BodyAs<BackingHandoffAck>();
      auto pending = pending_exports_.find(ack.source_segment.value);
      ACCENT_CHECK(pending != pending_exports_.end())
          << " handoff ack for unknown export " << ack.source_segment;
      auto on_ack = std::move(pending->second);
      pending_exports_.erase(pending);
      if (on_ack) {
        on_ack(ack.accepted);
      }
      return;
    }
    case MsgOp::kImagSegmentDeath: {
      const auto& death = msg.BodyAs<ImagSegmentDeath>();
      ++deaths_received_;
      auto it = objects_.find(death.segment.value);
      if (it == objects_.end()) {
        if (ForwardThroughStub(msg)) {
          return;
        }
        if (retired_.count(death.segment.value) != 0) {
          // A lossy wire can re-deliver the final death; the first one
          // already retired the object.
          ++duplicate_deaths_;
          return;
        }
        ACCENT_CHECK(false) << " unbalanced imaginary segment death for " << death.segment
                            << " at " << name_ << " (object never known or over-killed)";
      }
      ACCENT_CHECK(it->second.refs > 0)
          << " refcount underflow on " << death.segment << " at " << name_;
      if (--it->second.refs == 0) {
        if (pending_exports_.count(death.segment.value) != 0) {
          // The sole client died while this object was mid-export (its
          // death raced the handoff). Retire normally; the ack still
          // resolves through pending_exports_, and RetireToStub tolerates
          // the object being gone.
          ++deaths_during_export_;
        }
        if (it->second.owns_segment) {
          segments_.Destroy(it->second.segment->id());
        }
        objects_.erase(it);
        retired_.insert(death.segment.value);
      }
      return;
    }
    default:
      ACCENT_CHECK(false) << " backer received unexpected " << MsgOpName(msg.op);
  }
}

void SegmentBacker::ServeRead(const Message& msg) {
  const auto& request = msg.BodyAs<ImagReadRequest>();
  auto it = objects_.find(request.segment.value);
  ACCENT_CHECK(it != objects_.end())
      << " read request for unknown object " << request.segment << " at " << name_;
  Segment* segment = it->second.segment;

  ACCENT_CHECK(request.offset % kPageSize == 0);
  const PageIndex first = PageOf(request.offset);
  const PageIndex available =
      first >= segment->page_count() ? 0 : segment->page_count() - first;
  const PageIndex count = std::min<PageIndex>(request.page_count, available);

  std::vector<PageRef> pages;
  pages.reserve(count);
  for (PageIndex i = 0; i < count; ++i) {
    pages.push_back(segment->ReadPage(first + i));  // refcount bump, no byte copy
  }
  ++requests_served_;

  ImagReadReply reply;
  reply.request_id = request.request_id;
  reply.segment = request.segment;
  reply.offset = request.offset;

  // Confirm probe (docs/INTERNALS.md §15): the faulting host already holds
  // the bytes and only needs this backer to vouch that it still owns the
  // object and that the stored pages hash-match. A full match answers with
  // a small ack instead of the payload; any divergence (shorter object,
  // hash drift) silently degrades to the classic payload serve — the
  // origin's bytes are always authoritative.
  SimDuration service = costs_.backer_service;
  bool confirmed = false;
  if (request.probe == ImagProbeKind::kConfirm) {
    service += costs_.cache_lookup_cpu;
    confirmed = count == static_cast<PageIndex>(request.page_count) &&
                request.page_hashes.size() >= static_cast<std::size_t>(count);
    for (PageIndex i = 0; confirmed && i < count; ++i) {
      confirmed = pages[i].Hash() == request.page_hashes[i];
    }
    if (confirmed) {
      pages_confirmed_ += count;
    } else {
      ++confirm_mismatches_;
    }
  }

  Message response;
  response.dest = request.reply_port;
  response.op = MsgOp::kImagReadReply;
  response.traffic = TrafficKind::kFaultData;
  if (confirmed) {
    reply.hash_confirmed = true;
    response.inline_bytes = costs_.cache_confirm_bytes;
  } else {
    pages_served_ += count;
    response.inline_bytes = costs_.fault_reply_header_bytes;
    // The pager clamps requests to the mapped object, so a request can
    // never land wholly outside it.
    ACCENT_CHECK(!pages.empty()) << " read request beyond object end";
    response.regions.push_back(MemoryRegion::Data(request.offset, std::move(pages)));
  }
  response.body = reply;

  const CpuPriority priority =
      costs_.fault_priority_lane ? CpuPriority::kHigh : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(work_category_, service,
                               [this, response = std::move(response)]() mutable {
                                 Result<void> sent = fabric_.Send(host_, std::move(response));
                                 if (!sent.ok()) {
                                   ACCENT_LOG(kDebug)
                                       << "imaginary read reply dropped: " << sent.error().message;
                                 }
                               },
                               priority);
}

}  // namespace accent
