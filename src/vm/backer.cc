#include "src/vm/backer.h"

#include <utility>

#include "src/base/logging.h"
#include "src/vm/imag_protocol.h"

namespace accent {

SegmentBacker::SegmentBacker(HostId host, Simulator* sim, const CostTable* costs,
                             IpcFabric* fabric, SegmentTable* segments, CpuWork work_category,
                             std::string name)
    : host_(host),
      sim_(*sim),
      costs_(*costs),
      fabric_(*fabric),
      segments_(*segments),
      work_category_(work_category),
      name_(std::move(name)) {
  ACCENT_EXPECTS(sim != nullptr && costs != nullptr && fabric != nullptr && segments != nullptr);
}

void SegmentBacker::Start() {
  ACCENT_EXPECTS(!port_.valid()) << " backer started twice";
  port_ = fabric_.AllocatePort(host_, this, name_ + "-backing");
}

IouRef SegmentBacker::Back(Segment* segment) {
  ACCENT_EXPECTS(port_.valid()) << " backer not started";
  ACCENT_EXPECTS(segment != nullptr && segment->kind() == SegmentKind::kReal);
  BackedObject& object = objects_[segment->id().value];
  object.segment = segment;
  ++object.refs;
  return IouRef{port_, segment->id(), 0};
}

void SegmentBacker::AddRef(SegmentId segment) {
  auto it = objects_.find(segment.value);
  ACCENT_EXPECTS(it != objects_.end()) << " AddRef of unknown object " << segment;
  ++it->second.refs;
}

std::uint64_t SegmentBacker::RefCount(SegmentId segment) const {
  auto it = objects_.find(segment.value);
  return it == objects_.end() ? 0 : it->second.refs;
}

IouRef SegmentBacker::BackPages(ByteCount object_size, ByteCount first_page_offset,
                                std::vector<PageRef> pages, const std::string& name) {
  ACCENT_EXPECTS(first_page_offset % kPageSize == 0);
  ACCENT_EXPECTS(first_page_offset + pages.size() * kPageSize <= object_size);
  Segment* segment = segments_.CreateReal(object_size, name);
  const PageIndex first = PageOf(first_page_offset);
  for (std::size_t i = 0; i < pages.size(); ++i) {
    segment->StorePage(first + i, std::move(pages[i]));
  }
  const IouRef iou = Back(segment);
  objects_.at(segment->id().value).owns_segment = true;
  return iou;
}

IouRef SegmentBacker::BackPages(ByteCount object_size, ByteCount first_page_offset,
                                std::vector<PageData> pages, const std::string& name) {
  std::vector<PageRef> refs;
  refs.reserve(pages.size());
  for (PageData& page : pages) {
    refs.emplace_back(std::move(page));
  }
  return BackPages(object_size, first_page_offset, std::move(refs), name);
}

IouRef SegmentBacker::BackSparsePages(ByteCount object_size,
                                      std::vector<std::pair<PageIndex, PageRef>> pages,
                                      const std::string& name) {
  Segment* segment = segments_.CreateReal(object_size, name);
  for (auto& [page, data] : pages) {
    ACCENT_EXPECTS(page < segment->page_count());
    segment->StorePage(page, std::move(data));
  }
  const IouRef iou = Back(segment);
  objects_.at(segment->id().value).owns_segment = true;
  return iou;
}

IouRef SegmentBacker::BackSparsePages(ByteCount object_size,
                                      std::vector<std::pair<PageIndex, PageData>> pages,
                                      const std::string& name) {
  std::vector<std::pair<PageIndex, PageRef>> refs;
  refs.reserve(pages.size());
  for (auto& [page, data] : pages) {
    refs.emplace_back(page, PageRef(std::move(data)));
  }
  return BackSparsePages(object_size, std::move(refs), name);
}

void SegmentBacker::HandleMessage(Message msg) {
  switch (msg.op) {
    case MsgOp::kImagReadRequest:
      ServeRead(msg);
      return;
    case MsgOp::kImagSegmentDeath: {
      const auto& death = msg.BodyAs<ImagSegmentDeath>();
      ++deaths_received_;
      auto it = objects_.find(death.segment.value);
      if (it != objects_.end() && --it->second.refs == 0) {
        if (it->second.owns_segment) {
          segments_.Destroy(it->second.segment->id());
        }
        objects_.erase(it);
      }
      return;
    }
    default:
      ACCENT_CHECK(false) << " backer received unexpected " << MsgOpName(msg.op);
  }
}

void SegmentBacker::ServeRead(const Message& msg) {
  const auto& request = msg.BodyAs<ImagReadRequest>();
  auto it = objects_.find(request.segment.value);
  ACCENT_CHECK(it != objects_.end())
      << " read request for unknown object " << request.segment << " at " << name_;
  Segment* segment = it->second.segment;

  ACCENT_CHECK(request.offset % kPageSize == 0);
  const PageIndex first = PageOf(request.offset);
  const PageIndex available =
      first >= segment->page_count() ? 0 : segment->page_count() - first;
  const PageIndex count = std::min<PageIndex>(request.page_count, available);

  std::vector<PageRef> pages;
  pages.reserve(count);
  for (PageIndex i = 0; i < count; ++i) {
    pages.push_back(segment->ReadPage(first + i));  // refcount bump, no byte copy
  }
  ++requests_served_;
  pages_served_ += count;

  ImagReadReply reply;
  reply.request_id = request.request_id;
  reply.segment = request.segment;
  reply.offset = request.offset;

  Message response;
  response.dest = request.reply_port;
  response.op = MsgOp::kImagReadReply;
  response.traffic = TrafficKind::kFaultData;
  response.inline_bytes = costs_.fault_reply_header_bytes;
  response.body = reply;
  // The pager clamps requests to the mapped object, so a request can never
  // land wholly outside it.
  ACCENT_CHECK(!pages.empty()) << " read request beyond object end";
  response.regions.push_back(MemoryRegion::Data(request.offset, std::move(pages)));

  const CpuPriority priority =
      costs_.fault_priority_lane ? CpuPriority::kHigh : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(work_category_, costs_.backer_service,
                               [this, response = std::move(response)]() mutable {
                                 Result<void> sent = fabric_.Send(host_, std::move(response));
                                 if (!sent.ok()) {
                                   ACCENT_LOG(kDebug)
                                       << "imaginary read reply dropped: " << sent.error().message;
                                 }
                               },
                               priority);
}

}  // namespace accent
