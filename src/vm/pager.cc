#include "src/vm/pager.h"

#include <utility>

#include "src/base/logging.h"
#include "src/net/page_service.h"
#include "src/vm/imag_protocol.h"

namespace accent {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFillZero:
      return "fillzero";
    case FaultKind::kDisk:
      return "disk";
    case FaultKind::kCopyOnWrite:
      return "cow";
    case FaultKind::kImaginary:
      return "imaginary";
    case FaultKind::kAddressError:
      return "address-error";
  }
  return "?";
}

Pager::Pager(HostId host, Simulator* sim, const CostTable* costs, IpcFabric* fabric, Disk* disk,
             PhysicalMemory* memory)
    : host_(host), sim_(*sim), costs_(*costs), fabric_(*fabric), disk_(*disk), memory_(*memory) {
  ACCENT_EXPECTS(sim != nullptr && costs != nullptr && fabric != nullptr && disk != nullptr &&
                 memory != nullptr);
}

void Pager::Start() {
  ACCENT_EXPECTS(!port_.valid()) << " pager started twice";
  port_ = fabric_.AllocatePort(host_, this, "pager");
}

void Pager::MakeResident(AddressSpace* space, PageIndex page, bool dirty) {
  auto eviction = memory_.Insert(space->id(), page, dirty);
  if (eviction.has_value() && eviction->dirty) {
    ++stats_.pageouts;
    // Page-out to the local disk; contents already live in the private
    // store, so only the timing is charged. Nothing waits on it.
    disk_.Write(1, nullptr);
  }
}

SimDuration Pager::ResolveWriteCopy(AddressSpace* space, PageIndex page,
                                    AccessOutcome* outcome) {
  if (!space->NeedsCopyOnWrite(page)) {
    if (!space->HasPrivatePage(page)) {
      // Zero-fill or already-real page with no origin segment: own it now
      // (a shared reference; the first diverging write clones it).
      space->InstallPage(page, space->ReadPage(page));
    }
    return SimDuration::zero();
  }
  // First write to a shared segment page: the deferred copy (section 2.1)
  // is carried out for just this 512-byte page. The simulated cost is
  // charged here; physically the segment's payload is only referenced, and
  // PageRef clones it lazily when the write lands.
  ++stats_.cow_faults;
  outcome->fault = outcome->fault == FaultKind::kNone ? FaultKind::kCopyOnWrite : outcome->fault;
  space->InstallPage(page, space->ReadPage(page));
  memory_.MarkDirty(space->id(), page);
  return costs_.cow_fault;
}

void Pager::Access(AddressSpace* space, Addr addr, bool write, AccessDone done) {
  ACCENT_EXPECTS(space != nullptr && done != nullptr);
  // Tracing wraps the completion so the span covers the whole fault service
  // (request, wire round-trips, installation). Resident hits emit nothing;
  // the wrapper only observes, so simulated behaviour is unchanged.
  if (Tracer* tracer = sim_.tracer()) {
    done = [this, tracer, write, start = sim_.Now(),
            done = std::move(done)](const AccessOutcome& outcome) {
      if (outcome.fault != FaultKind::kNone) {
        tracer->Complete(host_, TraceLane::kPager,
                         std::string("pager:") + FaultKindName(outcome.fault),
                         start, sim_.Now() - start,
                         {{"page", Json(outcome.page)},
                          {"write", Json(write)},
                          {"failed", Json(outcome.failed)}});
      }
      done(outcome);
    };
  }
  const PageIndex page = PageOf(addr);
  const MemClass mem_class = space->ClassOf(addr);
  Cpu* cpu = fabric_.CpuOf(host_);
  if (mem_class == MemClass::kBad) {
    // A true addressing error: infinitely distant memory. The debugger is
    // invoked so the user can analyze and properly terminate the
    // delinquent process (section 2.3) — the access completes as failed.
    ++stats_.address_errors;
    ACCENT_LOG(kInfo) << "BadMem reference at addr " << addr << " — debugger invoked";
    AccessOutcome outcome;
    outcome.fault = FaultKind::kAddressError;
    outcome.page = page;
    outcome.failed = true;
    cpu->Submit(CpuWork::kKernel, costs_.pager_fillzero_fault,
                [outcome, done = std::move(done)]() { done(outcome); });
    return;
  }
  space->NoteTouched(page);

  // Fast path: resident.
  if (memory_.Contains(space->id(), page)) {
    memory_.Touch(space->id(), page);
    AccessOutcome outcome;
    outcome.page = page;
    const auto key = std::make_pair(space->id().value, page);
    if (untouched_prefetched_.erase(key) != 0) {
      outcome.prefetch_hit = true;
      ++stats_.prefetch_hits;
    }
    ++stats_.resident_hits;
    SimDuration cost = costs_.resident_access;
    if (write) {
      if (space->WriteIsTracked(addr)) {
        // Pre-copy armed the write-protect bit on this clean, resident page:
        // the write takes one extra trap to set the dirty bit. Disarmed
        // spaces never reach here, keeping legacy timings byte-identical.
        space->NoteTrackedWriteFault();
        cost += costs_.precopy_write_fault;
      }
      cost += ResolveWriteCopy(space, page, &outcome);
      memory_.MarkDirty(space->id(), page);
    }
    const CpuWork category =
        outcome.fault == FaultKind::kCopyOnWrite ? CpuWork::kPager : CpuWork::kProcess;
    cpu->Submit(category, cost, [outcome, done = std::move(done)]() { done(outcome); });
    return;
  }

  switch (mem_class) {
    case MemClass::kRealZero: {
      // FillZero fault: reserve a frame, zero it, map it. No disk.
      ++stats_.fillzero_faults;
      AccessOutcome outcome;
      outcome.fault = FaultKind::kFillZero;
      outcome.page = page;
      space->InstallPage(page, PageRef{});  // interned zero page: no allocation
      MakeResident(space, page, /*dirty=*/true);
      if (write) {
        memory_.MarkDirty(space->id(), page);
      }
      cpu->Submit(CpuWork::kPager, costs_.pager_fillzero_fault,
                  [outcome, done = std::move(done)]() { done(outcome); });
      return;
    }
    case MemClass::kReal: {
      // Local disk fault: contents are in the private store or the origin
      // segment (both "local disk" for timing purposes). Write faults
      // resolve their private copy only after the page is resident.
      ++stats_.disk_faults;
      AccessOutcome outcome;
      outcome.fault = FaultKind::kDisk;
      outcome.page = page;
      cpu->Submit(CpuWork::kPager, costs_.pager_disk_fault_cpu,
                  [this, cpu, space, page, write, outcome, done = std::move(done)]() mutable {
        disk_.Read(1, [this, cpu, space, page, write, outcome,
                       done = std::move(done)]() mutable {
          MakeResident(space, page, /*dirty=*/write);
          SimDuration copy_cost = SimDuration::zero();
          if (write) {
            copy_cost = ResolveWriteCopy(space, page, &outcome);
            outcome.fault = FaultKind::kDisk;
            memory_.MarkDirty(space->id(), page);
          }
          cpu->Submit(CpuWork::kPager, copy_cost,
                      [outcome, done = std::move(done)]() { done(outcome); });
        });
      });
      return;
    }
    case MemClass::kImag:
      StartImaginaryFault(space, page, write, std::move(done));
      return;
    case MemClass::kBad:
      break;
  }
  ACCENT_CHECK(false) << " unreachable fault class";
}

void Pager::StartImaginaryFault(AddressSpace* space, PageIndex page, bool write,
                                AccessDone done) {
  const auto key = std::make_pair(space->id().value, page);
  auto in_flight = in_flight_pages_.find(key);
  if (in_flight != in_flight_pages_.end()) {
    // Another access already asked for this page: join its reply.
    pending_[in_flight->second].waiters.push_back(Waiter{page, write, std::move(done)});
    return;
  }

  ++stats_.imag_faults;
  const AddressSpace::ImagTarget target = space->ImagTargetOf(PageBase(page));
  const PageIndex run = space->ImagRunLength(page, 1 + prefetch_pages_);
  ACCENT_CHECK(run >= 1);

  const std::uint64_t request_id = next_request_id_++;
  PendingFetch fetch;
  fetch.space = space;
  fetch.target = target;
  for (PageIndex i = 0; i < run; ++i) {
    fetch.va_pages.push_back(page + i);
    in_flight_pages_[std::make_pair(space->id().value, page + i)] = request_id;
  }
  fetch.waiters.push_back(Waiter{page, write, std::move(done)});

  // Hash-probe fault walk (docs/INTERNALS.md §15): with a PageService wired
  // and every page of the run hinted, try the local cache (tier 1: a small
  // confirm replaces the payload) then the nearest directory holder
  // (tier 2) before the origin (tier 3, the classic pull). Any page
  // without a hint keeps the whole run on the classic path.
  if (page_service_ != nullptr) {
    std::vector<PageHash> hashes;
    hashes.reserve(run);
    for (PageIndex i = 0; i < run; ++i) {
      const PageHash* hint = space->HashHintOf(page + i);
      if (hint == nullptr) {
        break;
      }
      hashes.push_back(*hint);
    }
    if (static_cast<PageIndex>(hashes.size()) == run) {
      fetch.hashes = std::move(hashes);
      bool all_local = true;
      for (const PageHash& hash : fetch.hashes) {
        all_local = all_local && page_service_->cache().Contains(hash);
      }
      if (all_local) {
        for (const PageHash& hash : fetch.hashes) {
          const PageRef* hit = page_service_->cache().Lookup(hash);
          ACCENT_CHECK(hit != nullptr);
          fetch.cached_pages.push_back(*hit);  // refcount bump, no byte copy
        }
        fetch.tier = FetchTier::kLocalConfirm;
        ++stats_.cache_local_hits;
      } else {
        // Charge the miss to the first absent page (hit/miss counters feed
        // the bench), then ask the directory for the cheapest holder.
        for (const PageHash& hash : fetch.hashes) {
          if (!page_service_->cache().Contains(hash)) {
            page_service_->cache().Lookup(hash);
            break;
          }
        }
        const HostId origin = fabric_.HomeOf(target.iou.backing_port);
        auto holder = page_service_->directory().NearestHolder(fetch.hashes.front(),
                                                               sim_.Now(), host_, origin);
        if (holder.has_value() &&
            page_service_->directory().ServicePortOf(*holder).valid()) {
          fetch.tier = FetchTier::kHolderPull;
          fetch.holder = *holder;
        }
      }
      if (Tracer* tracer = sim_.tracer()) {
        tracer->Instant(host_, TraceLane::kPager,
                        fetch.tier == FetchTier::kLocalConfirm ? "cache:hit" : "cache:miss",
                        sim_.Now(), {{"page", Json(page)}, {"pages", Json(run)}});
      }
    }
  }

  pending_[request_id] = std::move(fetch);
  DispatchFetch(request_id);
}

void Pager::DispatchFetch(std::uint64_t request_id) {
  PendingFetch& fetch = pending_.at(request_id);
  ++fetch.attempt;
  const auto run = static_cast<std::uint32_t>(fetch.va_pages.size());

  ImagReadRequest request;
  request.request_id = request_id;
  request.segment = fetch.target.iou.segment;
  request.offset = fetch.target.backer_offset;
  request.page_count = run;
  request.reply_port = port_;

  Message msg;
  msg.reply_port = port_;
  msg.op = MsgOp::kImagReadRequest;
  msg.traffic = TrafficKind::kFaultData;
  SimDuration cpu_cost = costs_.pager_imag_fault_cpu;
  switch (fetch.tier) {
    case FetchTier::kOrigin:
      msg.dest = fetch.target.iou.backing_port;
      msg.inline_bytes = costs_.fault_request_bytes;
      break;
    case FetchTier::kLocalConfirm:
      msg.dest = fetch.target.iou.backing_port;
      msg.inline_bytes =
          costs_.fault_request_bytes + costs_.page_hash_bytes * static_cast<ByteCount>(run);
      request.probe = ImagProbeKind::kConfirm;
      request.page_hashes = fetch.hashes;
      cpu_cost += costs_.cache_lookup_cpu;
      break;
    case FetchTier::kHolderPull:
      msg.dest = page_service_->directory().ServicePortOf(fetch.holder);
      msg.inline_bytes =
          costs_.fault_request_bytes + costs_.page_hash_bytes * static_cast<ByteCount>(run);
      request.probe = ImagProbeKind::kCachePull;
      request.page_hashes = fetch.hashes;
      cpu_cost += costs_.cache_lookup_cpu;
      break;
  }
  msg.body = std::move(request);

  Cpu* cpu = fabric_.CpuOf(host_);
  cpu->Submit(CpuWork::kPager, cpu_cost, [this, request_id, msg = std::move(msg)]() mutable {
    Result<void> sent = fabric_.Send(host_, std::move(msg));
    if (!sent.ok()) {
      ACCENT_LOG(kError) << "imaginary read request failed: " << sent.error().message;
      FetchSetback(request_id, /*holder_miss=*/false);
    }
  });
  if (fetch_timeout_enabled_) {
    // Lossy-wire guard: a reply lost to a crashed peer (in either
    // direction) must not strand the faulting process. Dead-letter bounces
    // normally resolve the fetch first; this is the backstop. The attempt
    // guard keeps a timer armed for a probe from firing on its fallback.
    const std::uint64_t attempt = fetch.attempt;
    sim_.ScheduleAfter(costs_.pager_fetch_timeout, [this, request_id, attempt]() {
      auto it = pending_.find(request_id);
      if (it != pending_.end() && it->second.attempt == attempt) {
        ACCENT_LOG(kInfo) << "imaginary fetch " << request_id << " timed out";
        FetchSetback(request_id, /*holder_miss=*/false);
      }
    });
  }
}

void Pager::FetchSetback(std::uint64_t request_id, bool holder_miss) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  PendingFetch& fetch = it->second;
  if (fetch.tier == FetchTier::kHolderPull) {
    // The probed holder no longer caches the bytes (miss) or is gone for
    // good (dead letter, timeout, dead port). Either way the origin still
    // owes the memory: drop a dead holder from the directory so nobody
    // probes it again, and fall back to the classic pull.
    if (holder_miss) {
      ++stats_.cache_holder_misses;
    } else {
      ++stats_.cache_holder_failovers;
      page_service_->directory().DropHost(fetch.holder);
    }
    fetch.tier = FetchTier::kOrigin;
    fetch.cached_pages.clear();
    DispatchFetch(request_id);
    return;
  }
  // kLocalConfirm setbacks fail exactly like the classic protocol: the
  // cached bytes may be right, but the origin no longer vouches for the
  // object (dead backer) — installing them would resurrect retired memory.
  FailPendingFetch(request_id);
}

void Pager::FailPendingFetch(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);
  ++stats_.failed_fetches;
  for (PageIndex page : fetch.va_pages) {
    in_flight_pages_.erase(std::make_pair(fetch.space->id().value, page));
  }
  for (Waiter& waiter : fetch.waiters) {
    AccessOutcome outcome;
    outcome.fault = FaultKind::kImaginary;
    outcome.page = waiter.page;
    outcome.failed = true;
    waiter.done(outcome);
  }
}

void Pager::HandleMessage(Message msg) {
  if (msg.op == MsgOp::kImagReadRequest) {
    // A peer pager's kCachePull probe (docs/INTERNALS.md §15).
    ServeCachePull(msg);
    return;
  }
  ACCENT_CHECK(msg.op == MsgOp::kImagReadReply)
      << " pager received unexpected " << MsgOpName(msg.op);
  const auto& reply = msg.BodyAs<ImagReadReply>();
  if (reply.failed) {
    // The request was dead-lettered: the peer is unreachable for good. A
    // holder probe falls back to the origin; anything else fails the fetch.
    FetchSetback(reply.request_id, /*holder_miss=*/false);
    return;
  }
  auto it = pending_.find(reply.request_id);
  if (it == pending_.end()) {
    ACCENT_LOG(kDebug) << "orphan imaginary read reply " << reply.request_id;
    return;
  }

  if (reply.cache_miss) {
    // The holder answered but no longer caches the bytes: origin fallback.
    FetchSetback(reply.request_id, /*holder_miss=*/true);
    return;
  }

  if (reply.hash_confirmed) {
    // Confirm ack: the origin vouched for ownership and content identity,
    // so the locally-cached payloads may be installed. No page bytes
    // crossed the wire — only cache_confirm_bytes of ack.
    PendingFetch fetch = std::move(it->second);
    pending_.erase(it);
    ACCENT_CHECK(fetch.tier == FetchTier::kLocalConfirm &&
                 fetch.cached_pages.size() == fetch.va_pages.size())
        << " confirm ack for a fetch that never probed";
    const std::vector<PageRef> pages = std::move(fetch.cached_pages);
    CompleteFetch(std::move(fetch), pages, /*payload_fetched=*/false);
    return;
  }

  ACCENT_CHECK(msg.regions.size() == 1 && msg.regions[0].mem_class == MemClass::kReal)
      << " malformed imaginary read reply";
  const std::vector<PageRef>& pages = msg.regions[0].pages;

  if (it->second.tier == FetchTier::kHolderPull) {
    // Holder payloads are not authoritative: re-verify every page against
    // the requested hash before installing. A divergent holder is dropped
    // and the fetch falls back to the origin — stale caches can delay a
    // pull, never corrupt one.
    const PendingFetch& probe = it->second;
    bool verified = pages.size() == probe.hashes.size();
    for (std::size_t i = 0; verified && i < pages.size(); ++i) {
      verified = pages[i].Hash() == probe.hashes[i];
    }
    if (!verified) {
      ++stats_.cache_hash_rejects;
      FetchSetback(reply.request_id, /*holder_miss=*/false);
      return;
    }
    stats_.cache_pages_from_holders += pages.size();
  }

  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);
  ACCENT_CHECK(pages.size() <= fetch.va_pages.size());
  CompleteFetch(std::move(fetch), pages, /*payload_fetched=*/true);
}

void Pager::CompleteFetch(PendingFetch fetch, const std::vector<PageRef>& pages,
                          bool payload_fetched) {
  AddressSpace* space = fetch.space;
  for (std::size_t i = 0; i < fetch.va_pages.size(); ++i) {
    in_flight_pages_.erase(std::make_pair(space->id().value, fetch.va_pages[i]));
  }

  SimDuration install_cost = SimDuration::zero();
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const PageIndex va_page = fetch.va_pages[i];
    space->InstallPage(va_page, pages[i]);
    // Fetched imaginary pages have no disk image yet: dirty so that
    // eviction pages them out locally.
    MakeResident(space, va_page, /*dirty=*/true);
    if (payload_fetched) {
      ++stats_.imag_pages_fetched;
    } else {
      ++stats_.cache_pages_confirmed;
    }
    if (i > 0) {
      ++stats_.prefetched_pages;
      untouched_prefetched_.insert(std::make_pair(space->id().value, va_page));
      install_cost += costs_.pager_map_extra_page;
    }
  }
  if (payload_fetched && page_service_ != nullptr) {
    // Publish freshly-pulled payloads into the content plane so later
    // faults — here or on any host — can dedup against them.
    for (const PageRef& page : pages) {
      page_service_->Publish(page, sim_.Now());
    }
  }

  // Resume everyone whose page arrived; re-fault any waiter whose page the
  // backer failed to return (it will retry through Access).
  std::vector<Waiter> waiters = std::move(fetch.waiters);
  Cpu* cpu = fabric_.CpuOf(host_);
  cpu->Submit(CpuWork::kPager, install_cost, [this, space, waiters = std::move(waiters)]() mutable {
    for (Waiter& waiter : waiters) {
      if (!space->HasPrivatePage(waiter.page)) {
        ACCENT_LOG(kDebug) << "backer returned short; re-faulting page " << waiter.page;
        Access(space, PageBase(waiter.page), waiter.write, std::move(waiter.done));
        continue;
      }
      untouched_prefetched_.erase(std::make_pair(space->id().value, waiter.page));
      AccessOutcome outcome;
      outcome.fault = FaultKind::kImaginary;
      outcome.page = waiter.page;
      if (waiter.write) {
        memory_.MarkDirty(space->id(), waiter.page);
      }
      waiter.done(outcome);
    }
  });
}

void Pager::ServeCachePull(const Message& msg) {
  const auto& request = msg.BodyAs<ImagReadRequest>();
  ACCENT_CHECK(request.probe == ImagProbeKind::kCachePull)
      << " pager received a non-probe read request";

  ImagReadReply reply;
  reply.request_id = request.request_id;
  reply.segment = request.segment;
  reply.offset = request.offset;

  // All-or-miss: a holder only answers with payload when it caches every
  // requested page, so the probing pager never has to stitch a partial
  // holder reply with an origin tail.
  std::vector<PageRef> pages;
  if (page_service_ != nullptr &&
      request.page_hashes.size() == static_cast<std::size_t>(request.page_count)) {
    pages.reserve(request.page_hashes.size());
    for (const PageHash& hash : request.page_hashes) {
      const PageRef* hit = page_service_->cache().Lookup(hash);
      if (hit == nullptr) {
        pages.clear();
        break;
      }
      pages.push_back(*hit);  // refcount bump, no byte copy
    }
  }

  Message response;
  response.dest = request.reply_port;
  response.op = MsgOp::kImagReadReply;
  response.traffic = TrafficKind::kFaultData;
  if (pages.empty()) {
    reply.cache_miss = true;
    response.inline_bytes = costs_.cache_confirm_bytes;
  } else {
    stats_.cache_pull_pages_served += pages.size();
    response.inline_bytes = costs_.fault_reply_header_bytes;
    response.regions.push_back(MemoryRegion::Data(request.offset, std::move(pages)));
  }
  response.body = reply;

  const CpuPriority priority =
      costs_.fault_priority_lane ? CpuPriority::kHigh : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(CpuWork::kPager, costs_.backer_service + costs_.cache_lookup_cpu,
                               [this, response = std::move(response)]() mutable {
                                 Result<void> sent = fabric_.Send(host_, std::move(response));
                                 if (!sent.ok()) {
                                   ACCENT_LOG(kDebug)
                                       << "cache pull reply dropped: " << sent.error().message;
                                 }
                               },
                               priority);
}

void Pager::NotifySpaceDeath(AddressSpace* space) {
  ACCENT_EXPECTS(space != nullptr);
  for (const IouRef& backer : space->ImaginaryBackers()) {
    ImagSegmentDeath death;
    death.segment = backer.segment;

    Message msg;
    msg.dest = backer.backing_port;
    msg.op = MsgOp::kImagSegmentDeath;
    msg.traffic = TrafficKind::kControl;
    msg.inline_bytes = kImagDeathBodyBytes;
    msg.body = death;
    Result<void> sent = fabric_.Send(host_, std::move(msg));
    if (!sent.ok()) {
      ACCENT_LOG(kDebug) << "segment death notice dropped: " << sent.error().message;
    }
  }
}

}  // namespace accent
