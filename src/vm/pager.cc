#include "src/vm/pager.h"

#include <utility>

#include "src/base/logging.h"
#include "src/vm/imag_protocol.h"

namespace accent {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFillZero:
      return "fillzero";
    case FaultKind::kDisk:
      return "disk";
    case FaultKind::kCopyOnWrite:
      return "cow";
    case FaultKind::kImaginary:
      return "imaginary";
    case FaultKind::kAddressError:
      return "address-error";
  }
  return "?";
}

Pager::Pager(HostId host, Simulator* sim, const CostTable* costs, IpcFabric* fabric, Disk* disk,
             PhysicalMemory* memory)
    : host_(host), sim_(*sim), costs_(*costs), fabric_(*fabric), disk_(*disk), memory_(*memory) {
  ACCENT_EXPECTS(sim != nullptr && costs != nullptr && fabric != nullptr && disk != nullptr &&
                 memory != nullptr);
}

void Pager::Start() {
  ACCENT_EXPECTS(!port_.valid()) << " pager started twice";
  port_ = fabric_.AllocatePort(host_, this, "pager");
}

void Pager::MakeResident(AddressSpace* space, PageIndex page, bool dirty) {
  auto eviction = memory_.Insert(space->id(), page, dirty);
  if (eviction.has_value() && eviction->dirty) {
    ++stats_.pageouts;
    // Page-out to the local disk; contents already live in the private
    // store, so only the timing is charged. Nothing waits on it.
    disk_.Write(1, nullptr);
  }
}

SimDuration Pager::ResolveWriteCopy(AddressSpace* space, PageIndex page,
                                    AccessOutcome* outcome) {
  if (!space->NeedsCopyOnWrite(page)) {
    if (!space->HasPrivatePage(page)) {
      // Zero-fill or already-real page with no origin segment: own it now
      // (a shared reference; the first diverging write clones it).
      space->InstallPage(page, space->ReadPage(page));
    }
    return SimDuration::zero();
  }
  // First write to a shared segment page: the deferred copy (section 2.1)
  // is carried out for just this 512-byte page. The simulated cost is
  // charged here; physically the segment's payload is only referenced, and
  // PageRef clones it lazily when the write lands.
  ++stats_.cow_faults;
  outcome->fault = outcome->fault == FaultKind::kNone ? FaultKind::kCopyOnWrite : outcome->fault;
  space->InstallPage(page, space->ReadPage(page));
  memory_.MarkDirty(space->id(), page);
  return costs_.cow_fault;
}

void Pager::Access(AddressSpace* space, Addr addr, bool write, AccessDone done) {
  ACCENT_EXPECTS(space != nullptr && done != nullptr);
  // Tracing wraps the completion so the span covers the whole fault service
  // (request, wire round-trips, installation). Resident hits emit nothing;
  // the wrapper only observes, so simulated behaviour is unchanged.
  if (Tracer* tracer = sim_.tracer()) {
    done = [this, tracer, write, start = sim_.Now(),
            done = std::move(done)](const AccessOutcome& outcome) {
      if (outcome.fault != FaultKind::kNone) {
        tracer->Complete(host_, TraceLane::kPager,
                         std::string("pager:") + FaultKindName(outcome.fault),
                         start, sim_.Now() - start,
                         {{"page", Json(outcome.page)},
                          {"write", Json(write)},
                          {"failed", Json(outcome.failed)}});
      }
      done(outcome);
    };
  }
  const PageIndex page = PageOf(addr);
  const MemClass mem_class = space->ClassOf(addr);
  Cpu* cpu = fabric_.CpuOf(host_);
  if (mem_class == MemClass::kBad) {
    // A true addressing error: infinitely distant memory. The debugger is
    // invoked so the user can analyze and properly terminate the
    // delinquent process (section 2.3) — the access completes as failed.
    ++stats_.address_errors;
    ACCENT_LOG(kInfo) << "BadMem reference at addr " << addr << " — debugger invoked";
    AccessOutcome outcome;
    outcome.fault = FaultKind::kAddressError;
    outcome.page = page;
    outcome.failed = true;
    cpu->Submit(CpuWork::kKernel, costs_.pager_fillzero_fault,
                [outcome, done = std::move(done)]() { done(outcome); });
    return;
  }
  space->NoteTouched(page);

  // Fast path: resident.
  if (memory_.Contains(space->id(), page)) {
    memory_.Touch(space->id(), page);
    AccessOutcome outcome;
    outcome.page = page;
    const auto key = std::make_pair(space->id().value, page);
    if (untouched_prefetched_.erase(key) != 0) {
      outcome.prefetch_hit = true;
      ++stats_.prefetch_hits;
    }
    ++stats_.resident_hits;
    SimDuration cost = costs_.resident_access;
    if (write) {
      if (space->WriteIsTracked(addr)) {
        // Pre-copy armed the write-protect bit on this clean, resident page:
        // the write takes one extra trap to set the dirty bit. Disarmed
        // spaces never reach here, keeping legacy timings byte-identical.
        space->NoteTrackedWriteFault();
        cost += costs_.precopy_write_fault;
      }
      cost += ResolveWriteCopy(space, page, &outcome);
      memory_.MarkDirty(space->id(), page);
    }
    const CpuWork category =
        outcome.fault == FaultKind::kCopyOnWrite ? CpuWork::kPager : CpuWork::kProcess;
    cpu->Submit(category, cost, [outcome, done = std::move(done)]() { done(outcome); });
    return;
  }

  switch (mem_class) {
    case MemClass::kRealZero: {
      // FillZero fault: reserve a frame, zero it, map it. No disk.
      ++stats_.fillzero_faults;
      AccessOutcome outcome;
      outcome.fault = FaultKind::kFillZero;
      outcome.page = page;
      space->InstallPage(page, PageRef{});  // interned zero page: no allocation
      MakeResident(space, page, /*dirty=*/true);
      if (write) {
        memory_.MarkDirty(space->id(), page);
      }
      cpu->Submit(CpuWork::kPager, costs_.pager_fillzero_fault,
                  [outcome, done = std::move(done)]() { done(outcome); });
      return;
    }
    case MemClass::kReal: {
      // Local disk fault: contents are in the private store or the origin
      // segment (both "local disk" for timing purposes). Write faults
      // resolve their private copy only after the page is resident.
      ++stats_.disk_faults;
      AccessOutcome outcome;
      outcome.fault = FaultKind::kDisk;
      outcome.page = page;
      cpu->Submit(CpuWork::kPager, costs_.pager_disk_fault_cpu,
                  [this, cpu, space, page, write, outcome, done = std::move(done)]() mutable {
        disk_.Read(1, [this, cpu, space, page, write, outcome,
                       done = std::move(done)]() mutable {
          MakeResident(space, page, /*dirty=*/write);
          SimDuration copy_cost = SimDuration::zero();
          if (write) {
            copy_cost = ResolveWriteCopy(space, page, &outcome);
            outcome.fault = FaultKind::kDisk;
            memory_.MarkDirty(space->id(), page);
          }
          cpu->Submit(CpuWork::kPager, copy_cost,
                      [outcome, done = std::move(done)]() { done(outcome); });
        });
      });
      return;
    }
    case MemClass::kImag:
      StartImaginaryFault(space, page, write, std::move(done));
      return;
    case MemClass::kBad:
      break;
  }
  ACCENT_CHECK(false) << " unreachable fault class";
}

void Pager::StartImaginaryFault(AddressSpace* space, PageIndex page, bool write,
                                AccessDone done) {
  const auto key = std::make_pair(space->id().value, page);
  auto in_flight = in_flight_pages_.find(key);
  if (in_flight != in_flight_pages_.end()) {
    // Another access already asked for this page: join its reply.
    pending_[in_flight->second].waiters.push_back(Waiter{page, write, std::move(done)});
    return;
  }

  ++stats_.imag_faults;
  const AddressSpace::ImagTarget target = space->ImagTargetOf(PageBase(page));
  const PageIndex run = space->ImagRunLength(page, 1 + prefetch_pages_);
  ACCENT_CHECK(run >= 1);

  const std::uint64_t request_id = next_request_id_++;
  PendingFetch fetch;
  fetch.space = space;
  for (PageIndex i = 0; i < run; ++i) {
    fetch.va_pages.push_back(page + i);
    in_flight_pages_[std::make_pair(space->id().value, page + i)] = request_id;
  }
  fetch.waiters.push_back(Waiter{page, write, std::move(done)});
  pending_[request_id] = std::move(fetch);

  ImagReadRequest request;
  request.request_id = request_id;
  request.segment = target.iou.segment;
  request.offset = target.backer_offset;
  request.page_count = static_cast<std::uint32_t>(run);
  request.reply_port = port_;

  Message msg;
  msg.dest = target.iou.backing_port;
  msg.reply_port = port_;
  msg.op = MsgOp::kImagReadRequest;
  msg.traffic = TrafficKind::kFaultData;
  msg.inline_bytes = costs_.fault_request_bytes;
  msg.body = request;

  Cpu* cpu = fabric_.CpuOf(host_);
  cpu->Submit(CpuWork::kPager, costs_.pager_imag_fault_cpu,
              [this, request_id, msg = std::move(msg)]() mutable {
                Result<void> sent = fabric_.Send(host_, std::move(msg));
                if (!sent.ok()) {
                  ACCENT_LOG(kError) << "imaginary read request failed: " << sent.error().message;
                  FailPendingFetch(request_id);
                }
              });
  if (fetch_timeout_enabled_) {
    // Lossy-wire guard: a reply lost to a crashed peer (in either
    // direction) must not strand the faulting process. Dead-letter bounces
    // normally fail the fetch first; this is the backstop.
    sim_.ScheduleAfter(costs_.pager_fetch_timeout, [this, request_id]() {
      if (pending_.count(request_id) != 0) {
        ACCENT_LOG(kInfo) << "imaginary fetch " << request_id << " timed out";
        FailPendingFetch(request_id);
      }
    });
  }
}

void Pager::FailPendingFetch(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);
  ++stats_.failed_fetches;
  for (PageIndex page : fetch.va_pages) {
    in_flight_pages_.erase(std::make_pair(fetch.space->id().value, page));
  }
  for (Waiter& waiter : fetch.waiters) {
    AccessOutcome outcome;
    outcome.fault = FaultKind::kImaginary;
    outcome.page = waiter.page;
    outcome.failed = true;
    waiter.done(outcome);
  }
}

void Pager::HandleMessage(Message msg) {
  ACCENT_CHECK(msg.op == MsgOp::kImagReadReply)
      << " pager received unexpected " << MsgOpName(msg.op);
  const auto& reply = msg.BodyAs<ImagReadReply>();
  if (reply.failed) {
    // The request was dead-lettered: the backer is unreachable for good.
    FailPendingFetch(reply.request_id);
    return;
  }
  auto it = pending_.find(reply.request_id);
  if (it == pending_.end()) {
    ACCENT_LOG(kDebug) << "orphan imaginary read reply " << reply.request_id;
    return;
  }
  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);

  ACCENT_CHECK(msg.regions.size() == 1 && msg.regions[0].mem_class == MemClass::kReal)
      << " malformed imaginary read reply";
  const std::vector<PageRef>& pages = msg.regions[0].pages;
  ACCENT_CHECK(pages.size() <= fetch.va_pages.size());

  AddressSpace* space = fetch.space;
  for (std::size_t i = 0; i < fetch.va_pages.size(); ++i) {
    in_flight_pages_.erase(std::make_pair(space->id().value, fetch.va_pages[i]));
  }

  SimDuration install_cost = SimDuration::zero();
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const PageIndex va_page = fetch.va_pages[i];
    space->InstallPage(va_page, pages[i]);
    // Fetched imaginary pages have no disk image yet: dirty so that
    // eviction pages them out locally.
    MakeResident(space, va_page, /*dirty=*/true);
    ++stats_.imag_pages_fetched;
    if (i > 0) {
      ++stats_.prefetched_pages;
      untouched_prefetched_.insert(std::make_pair(space->id().value, va_page));
      install_cost += costs_.pager_map_extra_page;
    }
  }

  // Resume everyone whose page arrived; re-fault any waiter whose page the
  // backer failed to return (it will retry through Access).
  std::vector<Waiter> waiters = std::move(fetch.waiters);
  Cpu* cpu = fabric_.CpuOf(host_);
  cpu->Submit(CpuWork::kPager, install_cost, [this, space, waiters = std::move(waiters)]() mutable {
    for (Waiter& waiter : waiters) {
      if (!space->HasPrivatePage(waiter.page)) {
        ACCENT_LOG(kDebug) << "backer returned short; re-faulting page " << waiter.page;
        Access(space, PageBase(waiter.page), waiter.write, std::move(waiter.done));
        continue;
      }
      untouched_prefetched_.erase(std::make_pair(space->id().value, waiter.page));
      AccessOutcome outcome;
      outcome.fault = FaultKind::kImaginary;
      outcome.page = waiter.page;
      if (waiter.write) {
        memory_.MarkDirty(space->id(), waiter.page);
      }
      waiter.done(outcome);
    }
  });
}

void Pager::NotifySpaceDeath(AddressSpace* space) {
  ACCENT_EXPECTS(space != nullptr);
  for (const IouRef& backer : space->ImaginaryBackers()) {
    ImagSegmentDeath death;
    death.segment = backer.segment;

    Message msg;
    msg.dest = backer.backing_port;
    msg.op = MsgOp::kImagSegmentDeath;
    msg.traffic = TrafficKind::kControl;
    msg.inline_bytes = kImagDeathBodyBytes;
    msg.body = death;
    Result<void> sent = fabric_.Send(host_, std::move(msg));
    if (!sent.ok()) {
      ACCENT_LOG(kDebug) << "segment death notice dropped: " << sent.error().message;
    }
  }
}

}  // namespace accent
