// Segments: the objects virtual memory ranges map to.
//
// A Real segment owns sparse page contents (a program image, a mapped file,
// an anonymous store); conceptually this is the segment's disk image plus
// its in-core cache — the *timing* distinction between disk and memory is
// made by PhysicalMemory residency, while contents have a single
// authoritative home here. An Imaginary segment (section 2.2) owns no data
// at all: it names a backing IPC port that delivers pages on demand.
#ifndef SRC_VM_SEGMENT_H_
#define SRC_VM_SEGMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/page_data.h"
#include "src/base/page_ref.h"
#include "src/base/page_store.h"
#include "src/base/types.h"
#include "src/ipc/message.h"

namespace accent {

enum class SegmentKind {
  kReal,       // contents stored here (disk image / anonymous memory)
  kImaginary,  // contents promised by a backing port
};

class Segment {
 public:
  Segment(SegmentId id, SegmentKind kind, ByteCount size, std::string debug_name)
      : id_(id), kind_(kind), size_(size), name_(std::move(debug_name)) {
    ACCENT_EXPECTS(size > 0 && size % kPageSize == 0);
  }

  SegmentId id() const { return id_; }
  SegmentKind kind() const { return kind_; }
  ByteCount size() const { return size_; }
  PageIndex page_count() const { return size_ / kPageSize; }
  const std::string& name() const { return name_; }

  // --- Real segments ---------------------------------------------------------
  // Pages are indexed relative to the segment start. Absent pages read as
  // zero (sparse store). Payloads are shared PageRefs: storing and reading
  // move references, never page bytes.
  void StorePage(PageIndex rel_page, PageRef data);
  const PageRef* FindPage(PageIndex rel_page) const;
  PageRef ReadPage(PageIndex rel_page) const;
  bool HasPage(PageIndex rel_page) const { return pages_.Contains(rel_page); }
  std::size_t stored_pages() const { return pages_.size(); }
  // Bytes of stored (non-zero-page) data.
  ByteCount StoredBytes() const { return pages_.size() * kPageSize; }
  // Visits stored pages in ascending order: fn(PageIndex, const PageRef&).
  template <typename Fn>
  void ForEachPage(Fn&& fn) const {
    pages_.ForEach(fn);
  }

  // --- Imaginary segments -------------------------------------------------------
  void SetBacking(IouRef iou) {
    ACCENT_EXPECTS(kind_ == SegmentKind::kImaginary);
    ACCENT_EXPECTS(iou.valid());
    iou_ = iou;
  }
  const IouRef& backing() const {
    ACCENT_EXPECTS(kind_ == SegmentKind::kImaginary);
    return iou_;
  }

 private:
  SegmentId id_;
  SegmentKind kind_;
  ByteCount size_;
  std::string name_;
  PageStore pages_;  // real segments only; zero pages stay absent (sparse)
  IouRef iou_;       // imaginary segments only
};

// Owns segments for one simulation; hands out stable pointers.
class SegmentTable {
 public:
  explicit SegmentTable(class Simulator* sim);

  Segment* CreateReal(ByteCount size, std::string debug_name);
  Segment* CreateImaginary(ByteCount size, IouRef iou, std::string debug_name);
  Segment* Find(SegmentId id) const;
  void Destroy(SegmentId id);

  std::size_t count() const { return segments_.size(); }

 private:
  class Simulator& sim_;
  std::map<std::uint64_t, std::unique_ptr<Segment>> segments_;
};

}  // namespace accent

#endif  // SRC_VM_SEGMENT_H_
