// Run-based dirty-page bitmap for pre-copy write tracking.
//
// Pre-copy migration (docs/INTERNALS.md section 13) re-ships exactly the
// pages written since the previous round, so the tracking structure is hit
// on every write fault of a live process. The old std::set<PageIndex> paid
// a tree node per dirty page; like PageStore, dirtiness clusters into
// contiguous runs (a Lisp heap sweep dirties thousands of adjacent pages),
// so this keeps sorted disjoint runs of 64-bit words — one header plus one
// dense word vector per cluster, binary search over runs, O(1) amortised
// marking within a run. Clean regions cost nothing, which is what lets the
// per-round bitmaps layer over PageStore runs without perturbing the shared
// PageRef payloads underneath.
#ifndef SRC_VM_DIRTY_BITMAP_H_
#define SRC_VM_DIRTY_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/types.h"

namespace accent {

class DirtyBitmap {
 public:
  // Marks `page` dirty. Returns true if the page was clean before.
  bool Mark(PageIndex page);

  bool Test(PageIndex page) const;

  // Clears every page in [first, end) (unmap / remap supersedes dirtiness).
  void EraseRange(PageIndex first, PageIndex end);

  void Clear() {
    runs_.clear();
    count_ = 0;
  }

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t run_count() const { return runs_.size(); }

  // All dirty pages in ascending order.
  std::vector<PageIndex> ToVector() const;

 private:
  // A run covers pages [first_word * 64, (first_word + words.size()) * 64).
  struct Run {
    PageIndex first_word = 0;
    std::vector<std::uint64_t> words;

    PageIndex end_word() const { return first_word + words.size(); }
  };

  // Index of the first run with end_word() > word; runs_.size() if none.
  std::size_t RunIndexFor(PageIndex word) const;

  std::vector<Run> runs_;  // sorted by first_word; disjoint; never empty
  std::size_t count_ = 0;
};

}  // namespace accent

#endif  // SRC_VM_DIRTY_BITMAP_H_
