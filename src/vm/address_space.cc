#include "src/vm/address_space.h"

#include <algorithm>

namespace accent {
namespace {

void CheckPageAligned(Addr begin, Addr end) {
  ACCENT_EXPECTS(begin < end);
  ACCENT_EXPECTS(begin % kPageSize == 0 && end % kPageSize == 0)
      << " range [" << begin << "," << end << ") not page aligned";
  ACCENT_EXPECTS(end <= kAddressSpaceLimit);
}

}  // namespace

void AddressSpace::Validate(Addr begin, Addr end) {
  CheckPageAligned(begin, end);
  ACCENT_EXPECTS(amap_.RangeAvoids(begin, end, MemClass::kRealZero) &&
                 amap_.RangeAvoids(begin, end, MemClass::kReal) &&
                 amap_.RangeAvoids(begin, end, MemClass::kImag))
      << " validating over an existing mapping";
  mappings_.Assign(begin, end, MappingValue{nullptr, begin, 0, false});
  amap_.Set(begin, end, MemClass::kRealZero);
}

void AddressSpace::MapReal(Addr begin, Addr end, Segment* segment, ByteCount seg_offset,
                           bool copy_on_write) {
  CheckPageAligned(begin, end);
  ACCENT_EXPECTS(segment != nullptr && segment->kind() == SegmentKind::kReal);
  ACCENT_EXPECTS(seg_offset % kPageSize == 0);
  ACCENT_EXPECTS(seg_offset + (end - begin) <= segment->size());
  DropPrivatePages(begin, end);  // a new mapping supersedes old contents
  mappings_.Assign(begin, end, MappingValue{segment, begin, seg_offset, copy_on_write});
  amap_.Set(begin, end, MemClass::kReal);
}

void AddressSpace::MapImaginary(Addr begin, Addr end, Segment* segment, ByteCount seg_offset) {
  CheckPageAligned(begin, end);
  ACCENT_EXPECTS(segment != nullptr && segment->kind() == SegmentKind::kImaginary);
  ACCENT_EXPECTS(seg_offset % kPageSize == 0);
  ACCENT_EXPECTS(seg_offset + (end - begin) <= segment->size());
  DropPrivatePages(begin, end);  // a new mapping supersedes old contents
  mappings_.Assign(begin, end, MappingValue{segment, begin, seg_offset, false});
  amap_.Set(begin, end, MemClass::kImag);
}

void AddressSpace::Unmap(Addr begin, Addr end) {
  CheckPageAligned(begin, end);
  mappings_.Erase(begin, end);
  amap_.Set(begin, end, MemClass::kBad);
  DropPrivatePages(begin, end);
}

void AddressSpace::DropPrivatePages(Addr begin, Addr end) {
  private_pages_.EraseRange(PageOf(begin), PageOf(end));
  dirty_since_mark_.EraseRange(PageOf(begin), PageOf(end));
}

AddressSpace::ImagTarget AddressSpace::ImagTargetOf(Addr addr) const {
  ACCENT_EXPECTS(ClassOf(addr) == MemClass::kImag);
  const MappingValue* mapping = mappings_.Find(addr);
  ACCENT_CHECK(mapping != nullptr && mapping->segment != nullptr);
  ACCENT_CHECK(mapping->segment->kind() == SegmentKind::kImaginary);
  const IouRef& iou = mapping->segment->backing();
  const ByteCount seg_offset = SegOffsetOf(*mapping, RoundDownToPage(addr));
  return ImagTarget{iou, iou.offset + seg_offset};
}

PageIndex AddressSpace::ImagRunLength(PageIndex first, PageIndex max_pages) const {
  if (max_pages == 0 || ClassOf(PageBase(first)) != MemClass::kImag) {
    return 0;
  }
  const ImagTarget base = ImagTargetOf(PageBase(first));
  PageIndex run = 1;
  while (run < max_pages) {
    const Addr addr = PageBase(first + run);
    if (addr >= kAddressSpaceLimit || ClassOf(addr) != MemClass::kImag) {
      break;
    }
    const ImagTarget next = ImagTargetOf(addr);
    const bool contiguous = next.iou.backing_port == base.iou.backing_port &&
                            next.iou.segment == base.iou.segment &&
                            next.backer_offset == base.backer_offset + run * kPageSize;
    if (!contiguous) {
      break;
    }
    ++run;
  }
  return run;
}

PageRef AddressSpace::ReadPage(PageIndex page) const {
  if (const PageRef* found = private_pages_.Find(page)) {
    return *found;
  }
  const Addr addr = PageBase(page);
  const MemClass mem_class = ClassOf(addr);
  ACCENT_EXPECTS(mem_class != MemClass::kImag)
      << " reading unfetched imaginary page " << page;
  ACCENT_EXPECTS(mem_class != MemClass::kBad) << " reading unmapped page " << page;
  if (mem_class == MemClass::kRealZero) {
    return PageRef{};
  }
  const MappingValue* mapping = mappings_.Find(addr);
  ACCENT_CHECK(mapping != nullptr);
  if (mapping->segment == nullptr) {
    return PageRef{};  // zero-fill range already reclassified Real by a touch
  }
  return mapping->segment->ReadPage(PageOf(SegOffsetOf(*mapping, addr)));
}

std::uint8_t AddressSpace::ReadByte(Addr addr) const {
  return PageByteAt(ReadPage(PageOf(addr)), addr % kPageSize);
}

void AddressSpace::WriteByte(Addr addr, std::uint8_t value) {
  const PageIndex page = PageOf(addr);
  PageRef* found = private_pages_.FindMutable(page);
  ACCENT_EXPECTS(found != nullptr)
      << " write to non-private page " << page << " (pager must materialise it first)";
  PageWriteByte(*found, addr % kPageSize, value);
  dirty_since_mark_.Mark(page);
}

void AddressSpace::InstallPage(PageIndex page, PageRef data) {
  const Addr addr = PageBase(page);
  ACCENT_EXPECTS(ClassOf(addr) != MemClass::kBad) << " installing into unmapped page " << page;
  private_pages_.Store(page, std::move(data));
  amap_.Set(addr, addr + kPageSize, MemClass::kReal);
  dirty_since_mark_.Mark(page);  // new private contents since the mark
}

bool AddressSpace::NeedsCopyOnWrite(PageIndex page) const {
  if (HasPrivatePage(page)) {
    return false;
  }
  const MappingValue* mapping = mappings_.Find(PageBase(page));
  return mapping != nullptr && mapping->segment != nullptr &&
         mapping->segment->kind() == SegmentKind::kReal;
}

std::vector<IouRef> AddressSpace::ImaginaryBackers() const {
  std::vector<IouRef> backers;
  mappings_.ForEach([&](const IntervalMap<MappingValue>::Interval& iv) {
    if (iv.value.segment == nullptr ||
        iv.value.segment->kind() != SegmentKind::kImaginary) {
      return;
    }
    const IouRef& iou = iv.value.segment->backing();
    const bool seen = std::any_of(backers.begin(), backers.end(), [&](const IouRef& b) {
      return b.backing_port == iou.backing_port && b.segment == iou.segment;
    });
    if (!seen) {
      backers.push_back(iou);
    }
  });
  return backers;
}

std::size_t AddressSpace::RebindBackers(const IouRef& from, const IouRef& to) {
  ACCENT_EXPECTS(to.valid());
  std::vector<Segment*> rebound;
  mappings_.ForEach([&](const IntervalMap<MappingValue>::Interval& iv) {
    Segment* segment = iv.value.segment;
    if (segment == nullptr || segment->kind() != SegmentKind::kImaginary) {
      return;
    }
    const IouRef& backing = segment->backing();
    if (backing.backing_port != from.backing_port || backing.segment != from.segment) {
      return;
    }
    if (std::find(rebound.begin(), rebound.end(), segment) != rebound.end()) {
      return;  // several mappings can share one stand-in segment
    }
    IouRef updated = to;
    updated.offset = backing.offset;  // VA-indexed on both ends
    segment->SetBacking(updated);
    rebound.push_back(segment);
  });
  return rebound.size();
}

std::vector<PageIndex> AddressSpace::RealPages() const {
  std::vector<PageIndex> pages;
  amap_.ForEach([&](const AMap::Interval& iv) {
    if (iv.value != MemClass::kReal) {
      return;
    }
    for (PageIndex page = PageOf(iv.begin); page < PageOf(iv.end); ++page) {
      pages.push_back(page);
    }
  });
  return pages;
}

}  // namespace accent
