#include "src/vm/dirty_bitmap.h"

#include <algorithm>

namespace accent {
namespace {

constexpr PageIndex kWordBits = 64;

PageIndex WordOf(PageIndex page) { return page / kWordBits; }
std::uint64_t BitOf(PageIndex page) { return 1ull << (page % kWordBits); }

}  // namespace

std::size_t DirtyBitmap::RunIndexFor(PageIndex word) const {
  std::size_t lo = 0;
  std::size_t hi = runs_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (runs_[mid].end_word() <= word) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool DirtyBitmap::Mark(PageIndex page) {
  const PageIndex word = WordOf(page);
  const std::uint64_t bit = BitOf(page);
  std::size_t index = RunIndexFor(word);
  if (index < runs_.size() && runs_[index].first_word <= word) {
    std::uint64_t& slot = runs_[index].words[word - runs_[index].first_word];
    if (slot & bit) {
      return false;
    }
    slot |= bit;
    ++count_;
    return true;
  }
  // `word` falls in the gap before runs_[index]. Extend a neighbour when
  // adjacent (the common append-on-sweep case), else open a fresh run.
  if (index > 0 && runs_[index - 1].end_word() == word) {
    runs_[index - 1].words.push_back(bit);
    // Fuse with the next run if the extension closed the gap.
    if (index < runs_.size() && runs_[index].first_word == word + 1) {
      Run& prev = runs_[index - 1];
      prev.words.insert(prev.words.end(), runs_[index].words.begin(), runs_[index].words.end());
      runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(index));
    }
  } else if (index < runs_.size() && runs_[index].first_word == word + 1) {
    runs_[index].first_word = word;
    runs_[index].words.insert(runs_[index].words.begin(), bit);
  } else {
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(index), Run{word, {bit}});
  }
  ++count_;
  return true;
}

bool DirtyBitmap::Test(PageIndex page) const {
  const PageIndex word = WordOf(page);
  const std::size_t index = RunIndexFor(word);
  if (index >= runs_.size() || runs_[index].first_word > word) {
    return false;
  }
  return (runs_[index].words[word - runs_[index].first_word] & BitOf(page)) != 0;
}

void DirtyBitmap::EraseRange(PageIndex first, PageIndex end) {
  if (first >= end || runs_.empty()) {
    return;
  }
  std::vector<Run> kept;
  kept.reserve(runs_.size());
  for (Run& run : runs_) {
    const PageIndex run_begin = run.first_word * kWordBits;
    const PageIndex run_end = run.end_word() * kWordBits;
    if (run_end <= first || run_begin >= end) {
      kept.push_back(std::move(run));
      continue;
    }
    for (PageIndex word = run.first_word; word < run.end_word(); ++word) {
      std::uint64_t& slot = run.words[word - run.first_word];
      if (slot == 0) {
        continue;
      }
      const PageIndex word_base = word * kWordBits;
      if (word_base + kWordBits <= first || word_base >= end) {
        continue;  // word lies entirely outside the erased range
      }
      std::uint64_t mask = ~0ull;
      if (first > word_base) {
        mask &= ~0ull << (first - word_base);
      }
      if (end < word_base + kWordBits) {
        mask &= (1ull << (end - word_base)) - 1;
      }
      const std::uint64_t cleared = slot & mask;
      count_ -= static_cast<std::size_t>(__builtin_popcountll(cleared));
      slot &= ~mask;
    }
    // Re-split around all-zero words so runs stay tight.
    PageIndex word = run.first_word;
    while (word < run.end_word()) {
      while (word < run.end_word() && run.words[word - run.first_word] == 0) {
        ++word;
      }
      if (word == run.end_word()) {
        break;
      }
      Run piece;
      piece.first_word = word;
      while (word < run.end_word() && run.words[word - run.first_word] != 0) {
        piece.words.push_back(run.words[word - run.first_word]);
        ++word;
      }
      kept.push_back(std::move(piece));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const Run& a, const Run& b) { return a.first_word < b.first_word; });
  runs_ = std::move(kept);
}

std::vector<PageIndex> DirtyBitmap::ToVector() const {
  std::vector<PageIndex> pages;
  pages.reserve(count_);
  for (const Run& run : runs_) {
    for (PageIndex word = run.first_word; word < run.end_word(); ++word) {
      std::uint64_t slot = run.words[word - run.first_word];
      while (slot != 0) {
        const int bit = __builtin_ctzll(slot);
        pages.push_back(word * kWordBits + static_cast<PageIndex>(bit));
        slot &= slot - 1;
      }
    }
  }
  return pages;
}

}  // namespace accent
