// The imaginary-segment IPC protocol (section 2.2).
//
// Touching a page of an imaginary segment makes the Pager/Scheduler send an
// Imaginary Read Request to the segment's backing port; whoever holds the
// Receive right interprets it and answers with an Imaginary Read Reply
// carrying the page(s). When the last reference to an imaginary object dies,
// Accent tells the backer with an Imaginary Segment Death message.
#ifndef SRC_VM_IMAG_PROTOCOL_H_
#define SRC_VM_IMAG_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "src/base/page_data.h"
#include "src/base/types.h"

namespace accent {

// Content-cache probe variants of the read request (the hash-probe fault
// walk, docs/INTERNALS.md §15). kNone is the classic protocol and the only
// shape that exists when the content cache is off.
enum class ImagProbeKind : std::uint8_t {
  kNone = 0,     // plain pull: backer ships payload pages
  kConfirm,      // destination holds the bytes; backer acks liveness + hash,
                 // transferring cache_confirm_bytes instead of the payload
  kCachePull,    // pull addressed to a *holder's* PageService by content
                 // hash; a holder miss answers with a small miss reply
};

struct ImagReadRequest {
  std::uint64_t request_id = 0;
  SegmentId segment;       // the backer's name for the object
  ByteCount offset = 0;    // page-aligned offset within the object
  std::uint32_t page_count = 1;  // 1 + prefetch
  PortId reply_port;
  // Hash-probe rider (empty/kNone on the classic path). `page_hashes`
  // carries one content hash per requested page; its wire weight is
  // page_hash_bytes each, charged through the carrying message.
  ImagProbeKind probe = ImagProbeKind::kNone;
  std::vector<PageHash> page_hashes;
};

struct ImagReadReply {
  std::uint64_t request_id = 0;
  SegmentId segment;
  ByteCount offset = 0;
  // The request could not be serviced and never will be: the backer is
  // unreachable for good (dead-lettered request on a lossy wire). The
  // reply carries no pages; the pager fails the waiting accesses.
  bool failed = false;
  // kConfirm answer: the backer is alive, still owns the object, and its
  // bytes hash-match — the destination may install its cached pages. The
  // reply carries no payload region, only cache_confirm_bytes of ack.
  bool hash_confirmed = false;
  // kCachePull answer from a holder that no longer caches the bytes: no
  // payload; the pager re-issues the pull at the origin (tier 3).
  bool cache_miss = false;
  // Pages ride as the message's single kReal MemoryRegion. The backer may
  // return fewer pages than asked (object end, pages it no longer owns).
};

struct ImagSegmentDeath {
  SegmentId segment;
};

// Backing-ownership handoff (multi-hop re-migration). When a process
// re-migrates off the host whose NetMsgServer cached pages for it, that
// host evacuates the cached object back to the chain origin's backer
// instead of leaving itself on the fault path forever. The handoff carries
// the object's sparse pages as VA-indexed kReal regions; the origin merges
// them into its own VA-indexed object for the same process.
struct BackingHandoff {
  SegmentId source_segment;  // the evacuating backer's name for the object
  SegmentId target_segment;  // the origin backer's object to merge into
};

struct BackingHandoffAck {
  SegmentId source_segment;  // echo, so the sender can match the export
  bool accepted = false;
};

inline constexpr ByteCount kImagRequestBodyBytes = 40;
inline constexpr ByteCount kImagReplyBodyBytes = 32;
inline constexpr ByteCount kImagDeathBodyBytes = 16;
inline constexpr ByteCount kBackingHandoffBodyBytes = 32;
inline constexpr ByteCount kBackingHandoffAckBodyBytes = 24;

}  // namespace accent

#endif  // SRC_VM_IMAG_PROTOCOL_H_
