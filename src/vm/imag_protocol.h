// The imaginary-segment IPC protocol (section 2.2).
//
// Touching a page of an imaginary segment makes the Pager/Scheduler send an
// Imaginary Read Request to the segment's backing port; whoever holds the
// Receive right interprets it and answers with an Imaginary Read Reply
// carrying the page(s). When the last reference to an imaginary object dies,
// Accent tells the backer with an Imaginary Segment Death message.
#ifndef SRC_VM_IMAG_PROTOCOL_H_
#define SRC_VM_IMAG_PROTOCOL_H_

#include <cstdint>

#include "src/base/types.h"

namespace accent {

struct ImagReadRequest {
  std::uint64_t request_id = 0;
  SegmentId segment;       // the backer's name for the object
  ByteCount offset = 0;    // page-aligned offset within the object
  std::uint32_t page_count = 1;  // 1 + prefetch
  PortId reply_port;
};

struct ImagReadReply {
  std::uint64_t request_id = 0;
  SegmentId segment;
  ByteCount offset = 0;
  // The request could not be serviced and never will be: the backer is
  // unreachable for good (dead-lettered request on a lossy wire). The
  // reply carries no pages; the pager fails the waiting accesses.
  bool failed = false;
  // Pages ride as the message's single kReal MemoryRegion. The backer may
  // return fewer pages than asked (object end, pages it no longer owns).
};

struct ImagSegmentDeath {
  SegmentId segment;
};

inline constexpr ByteCount kImagRequestBodyBytes = 40;
inline constexpr ByteCount kImagReplyBodyBytes = 32;
inline constexpr ByteCount kImagDeathBodyBytes = 16;

}  // namespace accent

#endif  // SRC_VM_IMAG_PROTOCOL_H_
