// Transfer strategies evaluated by the paper (section 4).
#ifndef SRC_MIGRATION_STRATEGY_H_
#define SRC_MIGRATION_STRATEGY_H_

#include <cstdint>

namespace accent {

enum class TransferStrategy : int {
  // Ship every RealMem page physically at migration time (NoIOUs set).
  kPureCopy = 0,
  // Ship nothing but IOUs; the source NetMsgServer caches the data and
  // pages it over on demand (copy-on-reference).
  kPureIou = 1,
  // Ship the resident set (the working-set approximation) physically and
  // IOUs for the rest.
  kResidentSet = 2,
  // Iterative pre-copy (Theimer's V system; docs/INTERNALS.md §13): snapshot
  // and re-ship dirtied pages while the process keeps executing, then
  // freeze-and-flash the final dirty set. Minimises downtime, not bytes.
  kPreCopy = 3,
};

const char* StrategyName(TransferStrategy strategy);

// Prefetch values studied in Figures 4-1 .. 4-4.
inline constexpr std::uint32_t kPaperPrefetchValues[] = {0, 1, 3, 7, 15};

}  // namespace accent

#endif  // SRC_MIGRATION_STRATEGY_H_
