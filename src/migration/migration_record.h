// Per-migration measurement record.
//
// One record is produced per trial and carries everything the evaluation
// harness needs to regenerate the paper's tables and figures: phase
// boundaries (request, excision, transfer, insertion, resumption) plus the
// excision sub-timings of Table 4-4.
#ifndef SRC_MIGRATION_MIGRATION_RECORD_H_
#define SRC_MIGRATION_MIGRATION_RECORD_H_

#include <string>

#include "src/base/types.h"
#include "src/migration/strategy.h"

namespace accent {

struct MigrationRecord {
  ProcId proc;
  std::string name;
  TransferStrategy strategy = TransferStrategy::kPureCopy;

  // Source-side phase boundaries.
  SimTime requested{0};     // migration command received
  SimTime excise_done{0};   // ExciseProcess trap returned
  SimTime core_sent{0};     // Core message handed to the IPC system
  SimTime rimas_sent{0};    // RIMAS message handed to the IPC system

  // Excision sub-timings (Table 4-4).
  SimDuration excise_amap{0};
  SimDuration excise_rimas{0};
  SimDuration excise_overall{0};

  // Destination-side boundaries (reported back in kMigrateComplete).
  SimTime core_arrived{0};
  SimTime rimas_arrived{0};
  SimDuration insert_time{0};
  SimTime resumed{0};  // first instruction eligible to run at the new host

  // Resident-set strategy bookkeeping.
  ByteCount resident_bytes_shipped = 0;
  // Extra RIMAS-handling charge from walking zero-fill maps during
  // resident-set packaging (costs.rs_zero_scan_per_mb; zero by default and
  // deliberately NOT serialised into the sweep cache).
  SimDuration rs_packaging_extra{0};

  // Pre-copy bookkeeping (Theimer's V system, §5; docs/INTERNALS.md §13).
  // Zero for the paper's three strategies.
  int precopy_rounds = 0;
  ByteCount precopy_bytes = 0;     // bytes shipped while still running
  SimTime frozen{0};               // process quiesced (downtime starts)
  // SLO-loop diagnostics (serialised into the sweep cache only for
  // pre-copy trials, so legacy rows stay byte-identical).
  double precopy_wws_pages = 0.0;            // writable-working-set estimate
  SimDuration precopy_predicted_downtime{0}; // flash prediction at freeze
  ByteCount precopy_flash_bytes = 0;         // final dirty pages in the RIMAS
  bool precopy_slo_met = false;              // predictor met target_downtime

  // Abort/rollback bookkeeping (lossy-wire runs only; never set on the
  // lossless paper trials and deliberately NOT serialised into the sweep
  // cache — the cache format describes successful migrations).
  bool aborted = false;            // transfer given up (peer unreachable)
  SimTime aborted_at{0};
  std::string abort_reason;
  bool rolled_back = false;        // process runnable at the source again
  SimDuration rollback_insert{0};  // InsertProcess cost of the rollback

  // Downtime: how long the process was unable to execute anywhere. For
  // pre-copy this is freeze->resume; the paper's strategies freeze at the
  // migration request.
  SimDuration Downtime() const {
    const SimTime start = frozen > SimTime{0} ? frozen : requested;
    return resumed - start;
  }

  // --- derived ------------------------------------------------------------
  // Table 4-5: RIMAS (address space) transfer time.
  SimDuration RimasTransferTime() const { return rimas_arrived - rimas_sent; }
  // Core context transfer time (§4.3.2: ~1 s in all cases).
  SimDuration CoreTransferTime() const { return core_arrived - core_sent; }
  // Whole transfer phase: excision end to resumption at the new site.
  SimDuration TransferPhase() const { return resumed - excise_done; }
};

}  // namespace accent

#endif  // SRC_MIGRATION_MIGRATION_RECORD_H_
