// Analytic mirror of the migration cost formulas.
//
// The mechanistic testbed (src/proc/excise.cc, migration_manager.cc)
// charges excision, insertion and payload costs event by event against a
// fully-materialised AddressSpace. The fleet-scale cluster layer
// (src/experiments/cluster.cc) simulates hundreds of hosts and thousands
// of processes, where materialising every address space would drown the
// point of the experiment; it instead describes each process by a small
// Footprint and charges the *same formulas* through these helpers. Keeping
// the arithmetic in one place ties the fleet model to the calibrated
// two-Perq one: a constant retuned in costs.h moves both.
#ifndef SRC_MIGRATION_COST_MODEL_H_
#define SRC_MIGRATION_COST_MODEL_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/host/calibration.h"
#include "src/host/costs.h"
#include "src/migration/strategy.h"

namespace accent {

struct MigrationCostModel {
  // What the formulas need to know about one process's address space.
  struct Footprint {
    std::int64_t map_entries = 0;     // validated regions
    std::int64_t real_pages = 0;      // RealMem pages (memory or disk)
    std::int64_t resident_pages = 0;  // the in-core working set
  };

  // Excision: AMap construction + RIMAS collapse + port/PCB packaging
  // (the three phases of ExciseProcess, summed).
  static SimDuration ExciseCost(const CostTable& costs, const Footprint& fp) {
    const SimDuration amap = costs.amap_base +
                             costs.amap_per_map_entry * fp.map_entries +
                             costs.amap_per_real_page * fp.real_pages;
    const SimDuration rimas = costs.rimas_base +
                              costs.rimas_per_map_entry * fp.map_entries +
                              costs.rimas_per_resident_page * fp.resident_pages;
    return amap + rimas + costs.excise_other;
  }

  // Insertion at the destination; `data_pages` is the count shipped
  // physically in the RIMAS (InsertProcess charges only those).
  static SimDuration InsertCost(const CostTable& costs, std::int64_t map_entries,
                                std::int64_t data_pages) {
    return costs.insert_base + costs.insert_per_map_entry * map_entries +
           costs.insert_per_resident_page * data_pages;
  }

  // Pages a strategy ships physically in the RIMAS; the rest ride as IOUs.
  static std::int64_t ShippedPages(TransferStrategy strategy, const Footprint& fp) {
    switch (strategy) {
      case TransferStrategy::kPureCopy:
        return fp.real_pages;
      case TransferStrategy::kPureIou:
        return 0;
      case TransferStrategy::kResidentSet:
        return fp.resident_pages < fp.real_pages ? fp.resident_pages : fp.real_pages;
      case TransferStrategy::kPreCopy:
        // Everything arrives physically by resumption (rounds + flash); the
        // analytic layers charge the re-shipped dirty overhead separately.
        return fp.real_pages;
    }
    return 0;
  }

  // Pages owed after the transfer — the copy-on-reference debt repaid by
  // later page pulls.
  static std::int64_t OwedPages(TransferStrategy strategy, const Footprint& fp) {
    return fp.real_pages - ShippedPages(strategy, fp);
  }

  // Wire size of the Core message: microstate/PCB context plus the eagerly
  // shipped AMap.
  static ByteCount CorePayloadBytes(const CostTable& costs, std::int64_t map_entries) {
    return costs.core_context_bytes +
           costs.amap_entry_bytes * static_cast<ByteCount>(map_entries);
  }

  // Wire size of the RIMAS message: shipped page bytes plus one
  // consolidated IOU descriptor whenever any memory is owed.
  static ByteCount RimasPayloadBytes(const CostTable& costs, TransferStrategy strategy,
                                     const Footprint& fp) {
    const std::int64_t shipped = ShippedPages(strategy, fp);
    ByteCount bytes = static_cast<ByteCount>(shipped) * kPageSize;
    if (OwedPages(strategy, fp) > 0) {
      bytes += costs.iou_descriptor_bytes;
    }
    return bytes;
  }

  // Page-pull protocol sizes (the kFaultData request/reply pair a batch of
  // owed pages rides on).
  static ByteCount PullRequestBytes(const CostTable& costs) {
    return costs.fault_request_bytes;
  }
  static ByteCount PullReplyBytes(const CostTable& costs, std::int64_t pages) {
    return costs.fault_reply_header_bytes + static_cast<ByteCount>(pages) * kPageSize;
  }

  // ---- content-addressed page service (docs/INTERNALS.md section 15) -----
  // A hash-probe request is the classic pull request plus one content hash
  // per page. Both fault-walk tiers pay it: a kConfirm probe to the origin
  // and a kCachePull to a holder.
  static ByteCount HashProbeRequestBytes(const CostTable& costs, std::int64_t pages) {
    return costs.fault_request_bytes +
           costs.page_hash_bytes * static_cast<ByteCount>(pages);
  }
  // A confirm ack (or a holder's miss reply): the small answer that rides
  // back instead of the payload when the destination already has the bytes.
  static ByteCount HashConfirmBytes(const CostTable& costs) {
    return costs.cache_confirm_bytes;
  }

  // ---- heterogeneous calibrations ----------------------------------------
  // The *On variants charge the same formulas on a specific host: CPU-bound
  // phases divide by that host's speed multiplier (excision runs on the
  // source, insertion on the destination — the asymmetry is the whole point
  // of calibrating per host). Identity calibrations reproduce the
  // homogeneous results exactly (ScaleCpu's 1.0 fast path).

  static SimDuration ExciseCostOn(const CostTable& costs, const Footprint& fp,
                                  const HostCalibration& source) {
    return ScaleCpu(ExciseCost(costs, fp), source.cpu_multiplier);
  }

  static SimDuration InsertCostOn(const CostTable& costs, std::int64_t map_entries,
                                  std::int64_t data_pages, const HostCalibration& dest) {
    return ScaleCpu(InsertCost(costs, map_entries, data_pages), dest.cpu_multiplier);
  }

  // Time `bytes` spend on the sender's egress link: serialization at the
  // link's (calibrated) bandwidth plus its (calibrated) propagation latency.
  static SimDuration WireCost(const CostTable& costs, ByteCount bytes,
                              const HostCalibration& sender) {
    const double bps = costs.wire_bytes_per_sec * sender.wire_bandwidth_multiplier;
    const auto serialize =
        SimDuration(static_cast<std::int64_t>(static_cast<double>(bytes) / bps * 1e6));
    return serialize + ScaleLatency(costs.wire_latency, sender.wire_latency_multiplier);
  }

  // Predicted freeze-and-flash downtime if a pre-copy migration froze now
  // with `dirty_pages` left to ship: excise on the source, Core plus the
  // final dirty pages on the source's egress link, insertion of those pages
  // at the destination. The manager evaluates this after every acknowledged
  // round against the target-downtime SLO (docs/INTERNALS.md §13).
  static SimDuration PreCopyCostOn(const CostTable& costs, const Footprint& fp,
                                   std::int64_t dirty_pages, const HostCalibration& source,
                                   const HostCalibration& dest) {
    const ByteCount wire_bytes = CorePayloadBytes(costs, fp.map_entries) +
                                 static_cast<ByteCount>(dirty_pages) * kPageSize;
    return ExciseCostOn(costs, fp, source) + WireCost(costs, wire_bytes, source) +
           InsertCostOn(costs, fp.map_entries, dirty_pages, dest);
  }

  // End-to-end relocation estimate for victim/destination scoring: excise
  // on the source, Core + RIMAS on the source's egress link, insert on the
  // destination. This is what makes anchor scoring use the *destination's*
  // costs — a slow-CPU destination inflates every candidate's estimate.
  static SimDuration RelocationCost(const CostTable& costs, TransferStrategy strategy,
                                    const Footprint& fp, const HostCalibration& source,
                                    const HostCalibration& dest) {
    const std::int64_t shipped = ShippedPages(strategy, fp);
    const ByteCount wire_bytes =
        CorePayloadBytes(costs, fp.map_entries) + RimasPayloadBytes(costs, strategy, fp);
    return ExciseCostOn(costs, fp, source) + WireCost(costs, wire_bytes, source) +
           InsertCostOn(costs, fp.map_entries, shipped, dest);
  }
};

}  // namespace accent

#endif  // SRC_MIGRATION_COST_MODEL_H_
