// Analytic mirror of the migration cost formulas.
//
// The mechanistic testbed (src/proc/excise.cc, migration_manager.cc)
// charges excision, insertion and payload costs event by event against a
// fully-materialised AddressSpace. The fleet-scale cluster layer
// (src/experiments/cluster.cc) simulates hundreds of hosts and thousands
// of processes, where materialising every address space would drown the
// point of the experiment; it instead describes each process by a small
// Footprint and charges the *same formulas* through these helpers. Keeping
// the arithmetic in one place ties the fleet model to the calibrated
// two-Perq one: a constant retuned in costs.h moves both.
#ifndef SRC_MIGRATION_COST_MODEL_H_
#define SRC_MIGRATION_COST_MODEL_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/host/costs.h"
#include "src/migration/strategy.h"

namespace accent {

struct MigrationCostModel {
  // What the formulas need to know about one process's address space.
  struct Footprint {
    std::int64_t map_entries = 0;     // validated regions
    std::int64_t real_pages = 0;      // RealMem pages (memory or disk)
    std::int64_t resident_pages = 0;  // the in-core working set
  };

  // Excision: AMap construction + RIMAS collapse + port/PCB packaging
  // (the three phases of ExciseProcess, summed).
  static SimDuration ExciseCost(const CostTable& costs, const Footprint& fp) {
    const SimDuration amap = costs.amap_base +
                             costs.amap_per_map_entry * fp.map_entries +
                             costs.amap_per_real_page * fp.real_pages;
    const SimDuration rimas = costs.rimas_base +
                              costs.rimas_per_map_entry * fp.map_entries +
                              costs.rimas_per_resident_page * fp.resident_pages;
    return amap + rimas + costs.excise_other;
  }

  // Insertion at the destination; `data_pages` is the count shipped
  // physically in the RIMAS (InsertProcess charges only those).
  static SimDuration InsertCost(const CostTable& costs, std::int64_t map_entries,
                                std::int64_t data_pages) {
    return costs.insert_base + costs.insert_per_map_entry * map_entries +
           costs.insert_per_resident_page * data_pages;
  }

  // Pages a strategy ships physically in the RIMAS; the rest ride as IOUs.
  static std::int64_t ShippedPages(TransferStrategy strategy, const Footprint& fp) {
    switch (strategy) {
      case TransferStrategy::kPureCopy:
        return fp.real_pages;
      case TransferStrategy::kPureIou:
        return 0;
      case TransferStrategy::kResidentSet:
        return fp.resident_pages < fp.real_pages ? fp.resident_pages : fp.real_pages;
    }
    return 0;
  }

  // Pages owed after the transfer — the copy-on-reference debt repaid by
  // later page pulls.
  static std::int64_t OwedPages(TransferStrategy strategy, const Footprint& fp) {
    return fp.real_pages - ShippedPages(strategy, fp);
  }

  // Wire size of the Core message: microstate/PCB context plus the eagerly
  // shipped AMap.
  static ByteCount CorePayloadBytes(const CostTable& costs, std::int64_t map_entries) {
    return costs.core_context_bytes +
           costs.amap_entry_bytes * static_cast<ByteCount>(map_entries);
  }

  // Wire size of the RIMAS message: shipped page bytes plus one
  // consolidated IOU descriptor whenever any memory is owed.
  static ByteCount RimasPayloadBytes(const CostTable& costs, TransferStrategy strategy,
                                     const Footprint& fp) {
    const std::int64_t shipped = ShippedPages(strategy, fp);
    ByteCount bytes = static_cast<ByteCount>(shipped) * kPageSize;
    if (OwedPages(strategy, fp) > 0) {
      bytes += costs.iou_descriptor_bytes;
    }
    return bytes;
  }

  // Page-pull protocol sizes (the kFaultData request/reply pair a batch of
  // owed pages rides on).
  static ByteCount PullRequestBytes(const CostTable& costs) {
    return costs.fault_request_bytes;
  }
  static ByteCount PullReplyBytes(const CostTable& costs, std::int64_t pages) {
    return costs.fault_reply_header_bytes + static_cast<ByteCount>(pages) * kPageSize;
  }
};

}  // namespace accent

#endif  // SRC_MIGRATION_COST_MODEL_H_
