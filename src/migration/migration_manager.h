// The MigrationManager process (section 3.2).
//
// One runs on every participating host. Given a process and a destination,
// it quiesces the process, excises its context with ExciseProcess, applies
// the configured transfer strategy to the RIMAS message —
//   pure-copy:     NoIOUs set; every RealMem page ships now;
//   pure-IOU:      NoIOUs clear; the intermediary NetMsgServer caches the
//                  data en route and becomes its backer;
//   resident-set:  resident pages ship physically, the non-resident
//                  remainder is adopted by the local NetMsgServer as IOUs —
// sends both context messages to the peer manager, which rebuilds the
// process with InsertProcess and resumes it. The peer reports the
// destination-side timings back in a kMigrateComplete message.
#ifndef SRC_MIGRATION_MIGRATION_MANAGER_H_
#define SRC_MIGRATION_MIGRATION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ipc/fabric.h"
#include "src/migration/migration_record.h"
#include "src/migration/strategy.h"
#include "src/netmsg/netmsgserver.h"
#include "src/proc/excise.h"
#include "src/proc/host_env.h"
#include "src/proc/process.h"

namespace accent {

// Remote-command body: "migrate process P to the manager at port D".
struct MigrateRequestBody {
  ProcId proc;
  PortId dest_manager;
  TransferStrategy strategy = TransferStrategy::kPureCopy;
};

// Pre-copy protocol (the iterative V-system baseline of section 5): page
// snapshots ship while the process still runs; the receiver stages them and
// acknowledges each round so the sender never overruns the network — the
// failure mode Theimer reports.
struct PreCopyRoundBody {
  ProcId proc;
  int round = 0;
  PortId reply_port;
};
struct PreCopyAckBody {
  ProcId proc;
  int round = 0;
};

struct PreCopyConfig {
  int max_rounds = 3;               // snapshot + at most this many dirty rounds
  PageIndex stop_threshold = 4;     // freeze early once the dirty set is this small
  // Target-downtime SLO. Zero (the default) disables the predictor and the
  // stagnation cutoff, reproducing the original round loop exactly. When
  // set, the manager freezes as soon as the predicted freeze-and-flash
  // downtime (MigrationCostModel::PreCopyCostOn over the writable working
  // set) meets the target, or when a round stops shrinking the dirty set —
  // more rounds can then only waste bytes, never meet the SLO sooner.
  SimDuration target_downtime{0};
};

// Destination-side timing report.
struct MigrateCompleteBody {
  ProcId proc;
  SimTime core_arrived{0};
  SimTime rimas_arrived{0};
  SimDuration insert_time{0};
  SimTime resumed{0};
};

// Chain collapse (multi-hop re-migration): after a re-migrated process
// resumes at the new destination, the intermediate host hands its cached
// backing objects to the chain origin and asks the destination to rebind
// its IouRefs so the intermediary drops off the fault path.
struct RebindIouBody {
  ProcId proc;
  IouRef from;  // the intermediary's (now exported) cache object
  IouRef to;    // the collapsed owner at the chain origin
  PortId reply_port;
};
struct RebindAckBody {
  ProcId proc;
  IouRef from;
  bool rebound = false;  // false: process unknown here (died or moved on)
  std::uint64_t segments_rebound = 0;
};

inline constexpr ByteCount kRebindIouBodyBytes = 56;
inline constexpr ByteCount kRebindAckBodyBytes = 40;

// Result of collapsing one process's backing chain at the intermediary.
struct ChainCollapseStats {
  ProcId proc;
  std::uint64_t objects_handed_off = 0;  // cache objects exported to origin
  std::uint64_t rebinds_acked = 0;       // destination rebind confirmations
  std::uint64_t segments_rebound = 0;    // stand-in segments repointed there
  SimTime collapsed_at{0};
};

class MigrationManager : public Receiver {
 public:
  using MigrateDone = std::function<void(const MigrationRecord&)>;

  explicit MigrationManager(HostEnv* env);

  // Allocates the command port.
  void Start();
  PortId port() const { return port_; }
  HostId host() const { return env_->id; }

  // Makes `proc` (running or ready on this host) eligible for remote
  // migration commands (kMigrateRequest names processes by id).
  void RegisterLocal(Process* proc);

  // Registered processes currently runnable on this host (policy input).
  std::vector<Process*> RunnableLocalProcesses() const;

  // Migrates `proc` to the MigrationManager listening on `dest_manager`.
  // `done` fires on this host when the peer confirms resumption.
  // kPreCopy dispatches to MigratePreCopy with the manager's default
  // PreCopyConfig (set_precopy_config), so every layer that selects
  // strategies by enum — trials, failure matrix, chains, the fuzzer,
  // remote kMigrateRequest commands — gets pre-copy for free.
  void Migrate(Process* proc, PortId dest_manager, TransferStrategy strategy, MigrateDone done);

  // Default round/SLO knobs used when Migrate is called with kPreCopy.
  void set_precopy_config(const PreCopyConfig& config) { precopy_config_ = config; }
  const PreCopyConfig& precopy_config() const { return precopy_config_; }

  // Migrates `proc` with the iterative pre-copy baseline: the address space
  // is snapshot and shipped while the process keeps executing; dirtied
  // pages re-ship each acknowledged round; only then is the process frozen
  // and excised, its RIMAS carrying just the final dirty pages. Downtime
  // shrinks; total bytes grow (section 5's trade-off).
  void MigratePreCopy(Process* proc, PortId dest_manager, const PreCopyConfig& config,
                      MigrateDone done);

  // Fires whenever a process is inserted (arrives) at this host.
  void set_on_insert(std::function<void(Process*)> fn) { on_insert_ = std::move(fn); }

  // Fires on this host (the intermediary) when a re-migrated process's
  // backing chain has fully collapsed: every cache object exported to the
  // chain origin, every destination IouRef rebound, forwarding stubs
  // installed. Also fires (with zero counts) when a re-migration completes
  // with nothing to hand off (e.g. a pure-copy second hop).
  using CollapseDone = std::function<void(const ChainCollapseStats&)>;
  void set_on_collapse(CollapseDone fn) { on_collapse_ = std::move(fn); }

  std::uint64_t chains_collapsed() const { return chains_collapsed_; }

  // Aborts an outbound migration that can no longer complete (dead-lettered
  // context, transfer-complete handshake timeout). If the process was
  // already excised, the retained authoritative context is re-inserted
  // locally and the process restarted — source-side rollback. The done
  // callback fires with record.aborted set. No-op if the migration already
  // completed or aborted.
  void AbortMigration(ProcId proc, const std::string& reason);

  // Processes that migrated here (owned until they migrate away again).
  const std::vector<std::unique_ptr<Process>>& adopted() const { return adopted_; }

  // Releases ownership of an adopted process (e.g. to migrate it onward).
  std::unique_ptr<Process> ReleaseAdopted(ProcId proc);

  // Receiver: core/rimas/complete/request messages.
  void HandleMessage(Message msg) override;
  const char* receiver_name() const override { return "migration-manager"; }

 private:
  struct PendingInsert {
    Message core;
    bool have_core = false;
    SimTime core_arrived{0};
    Message rimas;
    bool have_rimas = false;
    SimTime rimas_arrived{0};
    PortId reply_port;
    bool timeout_armed = false;  // destination teardown timer scheduled
  };

  // Deep copies of the two context messages, kept at the source until the
  // kMigrateComplete handshake so an abort can restore the process
  // (fault-injection runs only — lossless runs never copy).
  struct OutboundContext {
    Message core;
    Message rimas;
  };

  // Failure handling is active only when the local NetMsgServer runs the
  // reliable transport (fault-injection testbeds); lossless runs carry no
  // context copies, no timers, and an unchanged event schedule.
  bool failure_handling_enabled() const { return env_->netmsg->reliable(); }

  void HandleDeadLetter(const Message& msg);
  void ArmAbortTimer(ProcId proc);
  void ArmPendingTimeout(ProcId proc, PendingInsert* pending);

  // Applies the strategy to the excised RIMAS message. `resident_pages` is
  // the resident set sampled at suspension time; `zero_bytes` the space's
  // RealZero footprint (resident-set packaging walks those fill-zero maps,
  // costs.rs_zero_scan_per_mb per megabyte).
  void ApplyStrategy(Message* rimas, TransferStrategy strategy,
                     const std::vector<PageIndex>& resident_pages, ByteCount zero_bytes,
                     MigrationRecord* record);

  // Chain-collapse internals (see RebindIouBody). RecordChainOrigin scans a
  // freshly-excised RIMAS for remote migration-cache backers; StartChainCollapse
  // runs at kMigrateComplete for re-migrations.
  void RecordChainOrigin(ProcId proc, PortId dest_manager, const Message& rimas);
  void StartChainCollapse(ProcId proc);
  void FinishHandoff(ProcId proc, const IouRef& from, bool export_accepted);
  void FinishCollapseIfDone(ProcId proc);

  void MaybeInsert(ProcId proc);

  // Hands the two context messages to the IPC system (RIMAS first).
  void SendExcisedContext(ProcId proc, PortId dest_manager, ExciseResult excised);

  // Pre-copy internals.
  void RunPreCopyRound(Process* proc, PortId dest_manager, PreCopyConfig config, int round);
  void FreezeAndFinishPreCopy(Process* proc, PortId dest_manager);
  void HandlePreCopyRound(Message msg);
  void MergeStagedPages(Message* rimas, ProcId proc);

  // Per-process chain state at the intermediary, recorded when a re-excise
  // finds imaginary segments backed by a remote migration cache.
  struct ChainState {
    IouRef origin;        // the collapsed owner (offset-normalised)
    PortId dest_manager;  // where the process went (rebind target)
    int pending_handoffs = 0;
    int pending_rebinds = 0;
    ChainCollapseStats stats;
  };

  HostEnv* env_;
  PortId port_;
  std::function<void(Process*)> on_insert_;
  CollapseDone on_collapse_;
  std::map<std::uint64_t, ChainState> chain_;  // keyed by ProcId
  std::uint64_t chains_collapsed_ = 0;
  std::map<std::uint64_t, Process*> local_;          // registered local processes
  std::map<std::uint64_t, PendingInsert> pending_;   // keyed by ProcId
  std::map<std::uint64_t, MigrationRecord> outbound_;  // awaiting completion
  std::map<std::uint64_t, OutboundContext> outbound_context_;  // for rollback
  std::map<std::uint64_t, MigrateDone> done_;
  std::vector<std::unique_ptr<Process>> adopted_;

  // Pre-copy state. Staging lives at the destination; continuations wait
  // for round acknowledgements at the source.
  std::map<std::uint64_t, std::map<PageIndex, PageRef>> staged_;
  std::map<std::uint64_t, std::function<void()>> precopy_ack_waiters_;

  // Source-side per-round progress: the writable-working-set estimate (an
  // EWMA of per-round dirty counts) and the previous round's dirty count
  // for the stagnation cutoff. Keyed by ProcId; erased at freeze/abort.
  struct PreCopyProgress {
    double wws_pages = 0.0;
    std::size_t prev_dirty = 0;
  };
  std::map<std::uint64_t, PreCopyProgress> precopy_progress_;
  PreCopyConfig precopy_config_{};
};

}  // namespace accent

#endif  // SRC_MIGRATION_MIGRATION_MANAGER_H_
