#include "src/migration/migration_manager.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/base/logging.h"
#include "src/migration/cost_model.h"

namespace accent {

const char* StrategyName(TransferStrategy strategy) {
  switch (strategy) {
    case TransferStrategy::kPureCopy: return "pure-copy";
    case TransferStrategy::kPureIou: return "pure-IOU";
    case TransferStrategy::kResidentSet: return "resident-set";
    case TransferStrategy::kPreCopy: return "pre-copy";
  }
  return "?";
}

MigrationManager::MigrationManager(HostEnv* env) : env_(env) {
  ACCENT_EXPECTS(env != nullptr && env->complete());
  ACCENT_EXPECTS(env->netmsg != nullptr) << " migration requires a NetMsgServer";
}

void MigrationManager::Start() {
  ACCENT_EXPECTS(!port_.valid()) << " manager started twice";
  port_ = env_->fabric->AllocatePort(env_->id, this, "migration-manager");
  // Claim the local NetMsgServer's dead-letter channel: an undeliverable
  // context message means the peer is gone and the migration must abort.
  // (Only ever invoked in reliable mode; registering is free otherwise.)
  env_->netmsg->set_dead_letter_handler(
      [this](const Message& msg) { HandleDeadLetter(msg); });
}

void MigrationManager::RegisterLocal(Process* proc) {
  ACCENT_EXPECTS(proc != nullptr);
  local_[proc->id().value] = proc;
}

std::vector<Process*> MigrationManager::RunnableLocalProcesses() const {
  std::vector<Process*> runnable;
  for (const auto& [id, proc] : local_) {
    if (proc->state() == ProcState::kRunning || proc->state() == ProcState::kReady) {
      runnable.push_back(proc);
    }
  }
  return runnable;
}

std::unique_ptr<Process> MigrationManager::ReleaseAdopted(ProcId proc) {
  auto it = std::find_if(adopted_.begin(), adopted_.end(),
                         [proc](const std::unique_ptr<Process>& p) { return p->id() == proc; });
  ACCENT_EXPECTS(it != adopted_.end()) << " process " << proc << " was not adopted here";
  std::unique_ptr<Process> released = std::move(*it);
  adopted_.erase(it);
  return released;
}

void MigrationManager::ApplyStrategy(Message* rimas, TransferStrategy strategy,
                                     const std::vector<PageIndex>& resident_pages,
                                     ByteCount zero_bytes, MigrationRecord* record) {
  switch (strategy) {
    case TransferStrategy::kPureCopy:
      // Guarantee physical delivery of every RealMem page (section 2.4).
      rimas->no_ious = true;
      return;
    case TransferStrategy::kPureIou:
      // Let the intermediary NetMsgServer cache the data and substitute
      // IOUs on its own initiative (section 3.2).
      rimas->no_ious = false;
      return;
    case TransferStrategy::kResidentSet:
      break;
    case TransferStrategy::kPreCopy:
      // Pre-copy never reaches here: Migrate dispatches it to the round
      // loop, which builds its own dirty-only RIMAS at freeze time.
      ACCENT_CHECK(false) << " pre-copy does not route through ApplyStrategy";
      return;
  }

  // Resident-set: keep resident pages as physical data, hand everything
  // else to the local NetMsgServer as a single VA-indexed backed object.
  const std::set<PageIndex> resident(resident_pages.begin(), resident_pages.end());
  std::vector<MemoryRegion> kept;
  std::vector<std::pair<PageIndex, PageRef>> owed;
  Addr owed_lo = kAddressSpaceLimit;
  Addr owed_hi = 0;

  for (MemoryRegion& region : rimas->regions) {
    if (region.mem_class != MemClass::kReal) {
      kept.push_back(std::move(region));
      continue;
    }
    const PageIndex first = PageOf(region.base);
    PageIndex i = 0;
    while (i < region.page_count()) {
      if (resident.count(first + i) != 0) {
        // Collect a resident run.
        std::vector<PageRef> pages;
        const PageIndex run_start = i;
        while (i < region.page_count() && resident.count(first + i) != 0) {
          pages.push_back(std::move(region.pages[i]));
          ++i;
        }
        kept.push_back(MemoryRegion::Data(region.base + run_start * kPageSize, std::move(pages)));
        continue;
      }
      owed_lo = std::min(owed_lo, region.base + i * kPageSize);
      owed_hi = std::max(owed_hi, region.base + (i + 1) * kPageSize);
      owed.emplace_back(first + i, std::move(region.pages[i]));
      ++i;
    }
  }

  if (!owed.empty()) {
    std::vector<PageHashEntry> rider = env_->netmsg->PublishIouPages(owed, owed_lo);
    IouRef iou =
        env_->netmsg->AdoptPages(std::move(owed), "rs-owed:" + record->name, record->proc);
    // The backed object is VA-indexed; the region offset convention is
    // relative to the region base, so anchor it there.
    iou.offset = owed_lo;
    MemoryRegion iou_region = MemoryRegion::Iou(owed_lo, owed_hi - owed_lo, iou);
    iou_region.page_hashes = std::move(rider);
    kept.push_back(std::move(iou_region));
  }
  rimas->regions = std::move(kept);
  rimas->no_ious = true;  // what remains physical must stay physical
  for (const MemoryRegion& region : rimas->regions) {
    if (region.mem_class == MemClass::kReal) {
      record->resident_bytes_shipped += region.size;
    }
  }
  // Partitioning the RIMAS means walking the whole validated map, including
  // the untouched zero-fill expanses Lisp processes validate at birth — the
  // cost Table 4-5's measured resident-set column carries but a pure page
  // walk misses. Zero by default (costs.rs_zero_scan_per_mb).
  record->rs_packaging_extra =
      SimDuration(env_->costs->rs_zero_scan_per_mb.count() *
                  static_cast<std::int64_t>(zero_bytes / (1024 * 1024)));
}

void MigrationManager::Migrate(Process* proc, PortId dest_manager, TransferStrategy strategy,
                               MigrateDone done) {
  ACCENT_EXPECTS(proc != nullptr && done != nullptr);
  ACCENT_EXPECTS(proc->env() == env_) << " process is not on this manager's host";

  if (strategy == TransferStrategy::kPreCopy) {
    MigratePreCopy(proc, dest_manager, precopy_config_, std::move(done));
    return;
  }

  MigrationRecord record;
  record.proc = proc->id();
  record.name = proc->name();
  record.strategy = strategy;
  record.requested = env_->sim->Now();
  outbound_[proc->id().value] = record;
  done_[proc->id().value] = std::move(done);
  ArmAbortTimer(proc->id());

  if (Tracer* tracer = env_->sim->tracer()) {
    tracer->Instant(env_->id, TraceLane::kMigration, "migrate:request",
                    record.requested,
                    {{"proc", Json(record.proc.value)},
                     {"workload", Json(record.name)},
                     {"strategy", Json(StrategyName(strategy))},
                     {"dest_manager", Json(dest_manager.value)}});
  }

  proc->RequestSuspend([this, proc, dest_manager, strategy]() {
    // Sample the resident set and the zero-fill footprint now: excision
    // destroys residency and takes the space away.
    std::vector<PageIndex> resident = env_->memory->PagesOf(proc->space()->id());
    const ByteCount zero_bytes = proc->space()->RealZeroBytes();

    ExciseProcess(proc, [this, proc, dest_manager, strategy, zero_bytes,
                         resident = std::move(resident)](ExciseResult excised) {
      MigrationRecord& rec = outbound_.at(proc->id().value);
      rec.excise_amap = excised.amap_time;
      rec.excise_rimas = excised.rimas_time;
      rec.excise_overall = excised.overall_time;
      rec.excise_done = env_->sim->Now();

      ApplyStrategy(&excised.rimas, strategy, resident, zero_bytes, &rec);
      RecordChainOrigin(proc->id(), dest_manager, excised.rimas);

      SendExcisedContext(proc->id(), dest_manager, std::move(excised));
    });
  });
}

void MigrationManager::ArmAbortTimer(ProcId proc) {
  if (!failure_handling_enabled()) {
    return;
  }
  // The requested timestamp identifies this attempt: a later re-migration
  // of the same (rolled-back) process must not be killed by a stale timer.
  const SimTime attempt = outbound_.at(proc.value).requested;
  env_->sim->ScheduleAfter(env_->costs->migration_abort_timeout, [this, proc, attempt]() {
    auto it = outbound_.find(proc.value);
    if (it != outbound_.end() && it->second.requested == attempt) {
      AbortMigration(proc, "transfer-complete handshake timed out");
    }
  });
}

void MigrationManager::ArmPendingTimeout(ProcId proc, PendingInsert* pending) {
  if (!failure_handling_enabled() || pending->timeout_armed) {
    return;
  }
  pending->timeout_armed = true;
  env_->sim->ScheduleAfter(env_->costs->migration_pending_timeout, [this, proc]() {
    auto it = pending_.find(proc.value);
    if (it == pending_.end() || (it->second.have_core && it->second.have_rimas)) {
      return;  // completed (or already torn down)
    }
    ACCENT_LOG(kInfo) << "tearing down half-arrived context for " << proc
                      << " (peer presumed gone)";
    pending_.erase(it);
    staged_.erase(proc.value);
  });
}

void MigrationManager::AbortMigration(ProcId proc, const std::string& reason) {
  auto record_it = outbound_.find(proc.value);
  if (record_it == outbound_.end()) {
    return;  // already completed or aborted
  }
  MigrationRecord record = record_it->second;
  record.aborted = true;
  record.aborted_at = env_->sim->Now();
  record.abort_reason = reason;
  outbound_.erase(record_it);
  precopy_ack_waiters_.erase(proc.value);
  precopy_progress_.erase(proc.value);
  // An aborted re-migration never collapses: the rollback reinstates the
  // process here and this host legitimately remains its backer.
  chain_.erase(proc.value);
  ACCENT_LOG(kInfo) << "aborting migration of " << proc << ": " << reason;
  if (Tracer* tracer = env_->sim->tracer()) {
    tracer->Instant(env_->id, TraceLane::kMigration, "migrate:abort",
                    record.aborted_at,
                    {{"proc", Json(proc.value)}, {"reason", Json(reason)}});
  }

  MigrateDone done;
  auto done_it = done_.find(proc.value);
  if (done_it != done_.end()) {
    done = std::move(done_it->second);
    done_.erase(done_it);
  }

  auto context_it = outbound_context_.find(proc.value);
  if (context_it == outbound_context_.end()) {
    // Not yet excised (e.g. a pre-copy round failed before the freeze):
    // the process never stopped running here. Nothing to restore, but a
    // pre-copy attempt leaves tracking armed — disarm it.
    auto local_it = local_.find(proc.value);
    if (local_it != local_.end() && local_it->second->space() != nullptr) {
      local_it->second->space()->DisarmWriteTracking();
    }
    record.rolled_back = true;
    if (done != nullptr) {
      done(record);
    }
    return;
  }

  // Source-side rollback: the authoritative context copies were retained
  // until the handshake, so InsertProcess can rebuild the process exactly
  // as it was excised — resident-set/IOU strategies left the owed pages in
  // the *local* NetMsgServer cache, which keeps serving them here.
  OutboundContext context = std::move(context_it->second);
  outbound_context_.erase(context_it);
  InsertProcess(env_, std::move(context.core), std::move(context.rimas),
                [this, record, done = std::move(done)](std::unique_ptr<Process> process,
                                                       InsertResult result) mutable {
                  Process* raw = process.get();
                  adopted_.push_back(std::move(process));
                  RegisterLocal(raw);
                  raw->Start();
                  if (on_insert_ != nullptr) {
                    on_insert_(raw);
                  }
                  record.rolled_back = true;
                  record.rollback_insert = result.insert_time;
                  if (Tracer* tracer = env_->sim->tracer()) {
                    tracer->Instant(
                        env_->id, TraceLane::kMigration, "migrate:rolled-back",
                        env_->sim->Now(),
                        {{"proc", Json(record.proc.value)},
                         {"insert_us", Json(result.insert_time.count())}});
                  }
                  if (done != nullptr) {
                    done(record);
                  }
                });
}

void MigrationManager::HandleDeadLetter(const Message& msg) {
  switch (msg.op) {
    case MsgOp::kMigrateCore:
      AbortMigration(msg.BodyAs<CoreBody>().proc, "core context undeliverable");
      return;
    case MsgOp::kMigrateRimas:
      AbortMigration(msg.BodyAs<RimasBody>().proc, "RIMAS undeliverable");
      return;
    case MsgOp::kMigrateComplete:
      // The source vanished after we resumed its process. The process runs
      // on here; its residual dependencies will fault terminally if touched.
      ACCENT_LOG(kInfo) << "completion report undeliverable (source gone)";
      return;
    case MsgOp::kUser:
      if (const auto* round = std::any_cast<PreCopyRoundBody>(&msg.body)) {
        AbortMigration(round->proc, "pre-copy round undeliverable");
        return;
      }
      if (std::any_cast<PreCopyAckBody>(&msg.body) != nullptr) {
        ACCENT_LOG(kInfo) << "pre-copy ack undeliverable (sender gone)";
        return;
      }
      break;
    default:
      break;
  }
  ACCENT_LOG(kInfo) << "unhandled dead letter: " << MsgOpName(msg.op);
}

void MigrationManager::SendExcisedContext(ProcId proc, PortId dest_manager,
                                          ExciseResult excised) {
  // The RIMAS message goes first so lazy transfers aren't queued behind the
  // Core/AMap stream; its manager handling is charged up front and is the
  // floor of Table 4-5's ~0.16 s pure-IOU transfers. The heavier
  // per-migration control work is charged at the destination manager
  // (command processing around the Core message, §4.3.2's ~1 s).
  {
    // The excise phase span: downtime start (freeze for pre-copy, request
    // otherwise) to the ExciseProcess trap returning.
    MigrationRecord& record = outbound_.at(proc.value);
    if (Tracer* tracer = env_->sim->tracer()) {
      const SimTime phase_start =
          record.frozen > SimTime{0} ? record.frozen : record.requested;
      tracer->Complete(env_->id, TraceLane::kMigration, "migrate:excise",
                       phase_start, record.excise_done - phase_start,
                       {{"proc", Json(record.proc.value)},
                        {"amap_us", Json(record.excise_amap.count())},
                        {"rimas_us", Json(record.excise_rimas.count())}});
    }
  }
  outbound_.at(proc.value).rimas_sent = env_->sim->Now();
  // Tag the RIMAS with its process so any cache objects the NetMsgServer
  // path adopts en route (IOU substitution) are recorded against it — the
  // handle a later chain collapse evacuates them by. Metadata only.
  excised.rimas.cache_owner = proc;
  if (failure_handling_enabled()) {
    // Keep the authoritative copy until the transfer-complete handshake:
    // rollback re-inserts these exact messages. Deep copies (page data and
    // all) — made only on fault-injection testbeds. try_emplace: pre-copy
    // already stored its full-image context before the dirty filter, and the
    // filtered flash RIMAS on the wire is not a valid rollback image.
    outbound_context_.try_emplace(proc.value,
                                  OutboundContext{excised.core, excised.rimas});
  }
  const SimDuration rimas_handling = env_->costs->migration_rimas_handling +
                                     outbound_.at(proc.value).rs_packaging_extra;
  env_->cpu->Submit(CpuWork::kMigration, rimas_handling,
                    [this, proc, dest_manager, excised = std::move(excised)]() mutable {
    MigrationRecord& rec = outbound_.at(proc.value);
    excised.rimas.dest = dest_manager;
    excised.rimas.reply_port = port_;
    Result<void> rimas_sent = env_->fabric->Send(env_->id, std::move(excised.rimas));
    ACCENT_CHECK(rimas_sent.ok()) << rimas_sent.error().message;

    excised.core.dest = dest_manager;
    excised.core.reply_port = port_;
    rec.core_sent = env_->sim->Now();
    Result<void> core_sent = env_->fabric->Send(env_->id, std::move(excised.core));
    ACCENT_CHECK(core_sent.ok()) << core_sent.error().message;

    local_.erase(proc.value);
  });
}

void MigrationManager::RecordChainOrigin(ProcId proc, PortId dest_manager,
                                         const Message& rimas) {
  // A re-excised space folds its imaginary segments into the new RIMAS as
  // IOU regions. Those backed by a *remote* migration cache identify the
  // chain origin this host's own cache must collapse into once the process
  // resumes at the destination. First-hop migrations carry no such regions
  // and never enter the map — the lossless single-hop schedule is untouched.
  // A space can reference several remote caches (a ping-pong leaves one on
  // each side); the lowest-addressed one is chosen as the collapse target —
  // an origin that refuses the handoff just leaves ownership here.
  IouRef origin;
  for (const MemoryRegion& region : rimas.regions) {
    if (region.mem_class != MemClass::kImag || !region.iou.migration_cache) {
      continue;
    }
    if (region.iou.backing_port == env_->netmsg->backing_port()) {
      continue;  // our own cache (e.g. the rs-owed object just adopted)
    }
    if (!origin.backing_port.valid()) {
      origin = region.iou;
      origin.offset = 0;  // both objects are VA-indexed; anchor at zero
    }
  }
  if (!origin.backing_port.valid()) {
    return;
  }
  ChainState state;
  state.origin = origin;
  state.dest_manager = dest_manager;
  state.stats.proc = proc;
  chain_[proc.value] = state;
  if (Tracer* tracer = env_->sim->tracer()) {
    tracer->Instant(env_->id, TraceLane::kMigration, "chain:detected",
                    env_->sim->Now(),
                    {{"proc", Json(proc.value)},
                     {"origin_segment", Json(origin.segment.value)}});
  }
}

void MigrationManager::StartChainCollapse(ProcId proc) {
  auto it = chain_.find(proc.value);
  if (it == chain_.end()) {
    return;
  }
  ChainState& state = it->second;
  std::vector<IouRef> objects = env_->netmsg->TakeCacheObjectsFor(proc);
  if (Tracer* tracer = env_->sim->tracer()) {
    tracer->Instant(env_->id, TraceLane::kMigration, "chain:collapse-start",
                    env_->sim->Now(),
                    {{"proc", Json(proc.value)},
                     {"objects", Json(static_cast<std::uint64_t>(objects.size()))}});
  }
  if (objects.empty()) {
    // Nothing was cached here (e.g. a pure-copy second hop): the
    // destination already faults straight at the origin.
    FinishCollapseIfDone(proc);
    return;
  }
  state.pending_handoffs += static_cast<int>(objects.size());
  SegmentBacker& backer = env_->netmsg->backer();
  for (const IouRef& object : objects) {
    IouRef from = object;
    from.offset = 0;
    backer.ExportObject(object.segment, state.origin,
                        [this, proc, from](bool accepted) {
                          FinishHandoff(proc, from, accepted);
                        });
  }
}

void MigrationManager::FinishHandoff(ProcId proc, const IouRef& from, bool export_accepted) {
  auto it = chain_.find(proc.value);
  ACCENT_CHECK(it != chain_.end()) << " handoff ack for unknown chain " << proc;
  ChainState& state = it->second;
  --state.pending_handoffs;
  if (!export_accepted) {
    // The origin refused (object retired, or itself evacuating): ownership
    // stays here and the destination keeps faulting at this host — the
    // §2.2 default. No rebind, no stub.
    FinishCollapseIfDone(proc);
    return;
  }
  ++state.stats.objects_handed_off;
  // The origin holds the pages now; the destination must stop referencing
  // this host: rebind its IouRefs at the collapsed owner.
  ++state.pending_rebinds;
  RebindIouBody body;
  body.proc = proc;
  body.from = from;
  body.to = state.origin;
  body.reply_port = port_;
  Message msg;
  msg.dest = state.dest_manager;
  msg.op = MsgOp::kRebindIou;
  msg.traffic = TrafficKind::kControl;
  msg.inline_bytes = kRebindIouBodyBytes;
  msg.body = body;
  Result<void> sent = env_->fabric->Send(env_->id, std::move(msg));
  ACCENT_CHECK(sent.ok()) << sent.error().message;
}

void MigrationManager::FinishCollapseIfDone(ProcId proc) {
  auto it = chain_.find(proc.value);
  if (it == chain_.end()) {
    return;
  }
  ChainState& state = it->second;
  if (state.pending_handoffs > 0 || state.pending_rebinds > 0) {
    return;
  }
  state.stats.collapsed_at = env_->sim->Now();
  ChainCollapseStats stats = state.stats;
  chain_.erase(it);
  ++chains_collapsed_;
  if (Tracer* tracer = env_->sim->tracer()) {
    tracer->Instant(env_->id, TraceLane::kMigration, "chain:collapsed",
                    stats.collapsed_at,
                    {{"proc", Json(stats.proc.value)},
                     {"objects", Json(stats.objects_handed_off)},
                     {"rebinds", Json(stats.rebinds_acked)},
                     {"segments", Json(stats.segments_rebound)}});
  }
  if (on_collapse_ != nullptr) {
    on_collapse_(stats);
  }
}

void MigrationManager::MigratePreCopy(Process* proc, PortId dest_manager,
                                      const PreCopyConfig& config, MigrateDone done) {
  ACCENT_EXPECTS(proc != nullptr && done != nullptr);
  ACCENT_EXPECTS(proc->env() == env_) << " process is not on this manager's host";
  ACCENT_EXPECTS(config.max_rounds >= 1);

  MigrationRecord record;
  record.proc = proc->id();
  record.name = proc->name();
  record.strategy = TransferStrategy::kPreCopy;
  record.requested = env_->sim->Now();
  outbound_[proc->id().value] = record;
  done_[proc->id().value] = std::move(done);
  ArmAbortTimer(proc->id());

  if (Tracer* tracer = env_->sim->tracer()) {
    tracer->Instant(env_->id, TraceLane::kMigration, "migrate:request",
                    record.requested,
                    {{"proc", Json(record.proc.value)},
                     {"workload", Json(record.name)},
                     {"strategy", Json(StrategyName(record.strategy))},
                     {"dest_manager", Json(dest_manager.value)},
                     {"max_rounds", Json(config.max_rounds)},
                     {"target_downtime_us", Json(config.target_downtime.count())}});
  }

  precopy_progress_[proc->id().value] = PreCopyProgress{};
  proc->space()->MarkAllClean();
  proc->space()->ArmWriteTracking();
  RunPreCopyRound(proc, dest_manager, config, 0);
}

void MigrationManager::RunPreCopyRound(Process* proc, PortId dest_manager,
                                       PreCopyConfig config, int round) {
  AddressSpace* space = proc->space();
  // Round 0 snapshots everything; later rounds re-ship what was dirtied
  // while the previous round was in flight.
  const std::vector<PageIndex> pages = round == 0 ? space->RealPages() : space->DirtyPages();
  space->MarkAllClean();

  MigrationRecord& record = outbound_.at(proc->id().value);
  ++record.precopy_rounds;

  PreCopyRoundBody body;
  body.proc = proc->id();
  body.round = round;
  body.reply_port = port_;

  Message msg;
  msg.dest = dest_manager;
  msg.op = MsgOp::kUser;
  msg.no_ious = true;  // snapshots must arrive physically
  msg.traffic = TrafficKind::kBulkData;
  msg.inline_bytes = 32;
  msg.body = body;
  // Contiguous runs become regions.
  std::size_t i = 0;
  while (i < pages.size()) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) {
      ++j;
    }
    std::vector<PageRef> data;
    data.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) {
      data.push_back(space->ReadPage(pages[k]));
    }
    msg.regions.push_back(MemoryRegion::Data(PageBase(pages[i]), std::move(data)));
    i = j;
  }
  record.precopy_bytes += msg.DataBytes();
  const std::size_t shipped_pages = pages.size();
  const SimTime round_start = env_->sim->Now();

  // Continue when the receiver acknowledges this round (flow control: the
  // V system's network overruns came from the lack of exactly this).
  precopy_ack_waiters_[proc->id().value] = [this, proc, dest_manager, config, round,
                                            shipped_pages, round_start]() {
    if (proc->done() || proc->faulted()) {
      // The process ran to completion (or died) at the source while the
      // round was in flight; there is nothing left worth freezing.
      AbortMigration(proc->id(), "process terminated before pre-copy freeze");
      return;
    }
    AddressSpace* space_at_ack = proc->space();
    const std::size_t dirty = space_at_ack->dirty_count();
    PreCopyProgress& progress = precopy_progress_[proc->id().value];
    // Writable working set: an EWMA over per-round dirty counts. Recent
    // rounds dominate, so a phase change (a Lisp GC kicking in, a scan
    // wrapping around) re-steers the estimate within a round or two.
    progress.wws_pages = round == 0
                             ? static_cast<double>(dirty)
                             : 0.5 * progress.wws_pages + 0.5 * static_cast<double>(dirty);

    MigrationRecord& rec = outbound_.at(proc->id().value);
    rec.precopy_wws_pages = progress.wws_pages;

    if (Tracer* tracer = env_->sim->tracer()) {
      // Rounds are strictly sequential (ack flow control) and each next
      // round starts at the instant the previous ack lands, so these spans
      // tile the live-transfer phase exactly (docs/OBSERVABILITY.md).
      tracer->Complete(env_->id, TraceLane::kMigration, "precopy:round",
                       round_start, env_->sim->Now() - round_start,
                       {{"round", Json(round)},
                        {"pages", Json(static_cast<std::uint64_t>(shipped_pages))},
                        {"dirty_at_ack", Json(static_cast<std::uint64_t>(dirty))},
                        {"wws_pages", Json(progress.wws_pages)}});
    }

    const bool out_of_rounds = round + 1 >= config.max_rounds;
    const bool converged = dirty <= config.stop_threshold;
    bool slo_met = false;
    bool stagnated = false;
    if (config.target_downtime > SimDuration::zero()) {
      MigrationCostModel::Footprint fp;
      fp.map_entries = static_cast<std::int64_t>(space_at_ack->map_entries());
      fp.real_pages =
          static_cast<std::int64_t>(space_at_ack->RealBytes() / kPageSize);
      fp.resident_pages = static_cast<std::int64_t>(
          env_->memory->PagesOf(space_at_ack->id()).size());
      // The destination's calibration is unknown at the source; predicting
      // with a nominal (identity) destination keeps the predictor local.
      const SimDuration predicted = MigrationCostModel::PreCopyCostOn(
          *env_->costs, fp, static_cast<std::int64_t>(dirty), env_->calibration,
          HostCalibration{});
      rec.precopy_predicted_downtime = predicted;
      slo_met = predicted <= config.target_downtime;
      rec.precopy_slo_met = slo_met;
      // A round that failed to shrink the dirty set cannot meet the SLO
      // later either — the process rewrites its working set faster than
      // the wire drains it. Further rounds only waste bytes.
      stagnated = round > 0 && dirty >= progress.prev_dirty;
    }
    progress.prev_dirty = dirty;

    if (out_of_rounds || converged || slo_met || stagnated) {
      FreezeAndFinishPreCopy(proc, dest_manager);
      return;
    }
    RunPreCopyRound(proc, dest_manager, config, round + 1);
  };

  // Round handling: dirty-bitmap harvest + run construction on top of the
  // RIMAS-style descriptor work.
  env_->cpu->Submit(CpuWork::kMigration,
                    env_->costs->migration_rimas_handling + env_->costs->precopy_round_control,
                    [this, msg = std::move(msg)]() mutable {
                      Result<void> sent = env_->fabric->Send(env_->id, std::move(msg));
                      ACCENT_CHECK(sent.ok()) << sent.error().message;
                    });
}

void MigrationManager::FreezeAndFinishPreCopy(Process* proc, PortId dest_manager) {
  proc->RequestSuspend([this, proc, dest_manager]() {
    MigrationRecord& record = outbound_.at(proc->id().value);
    record.frozen = env_->sim->Now();
    proc->space()->DisarmWriteTracking();  // the excise harvests the final set
    precopy_progress_.erase(proc->id().value);
    if (Tracer* tracer = env_->sim->tracer()) {
      tracer->Instant(env_->id, TraceLane::kMigration, "precopy:frozen",
                      record.frozen,
                      {{"proc", Json(proc->id().value)},
                       {"rounds", Json(record.precopy_rounds)},
                       {"dirty_pages",
                        Json(static_cast<std::uint64_t>(proc->space()->dirty_count()))}});
    }
    // Pages dirtied since the last acknowledged round must travel in the
    // RIMAS; everything else is already staged at the destination.
    const std::vector<PageIndex> dirty_list = proc->space()->DirtyPages();
    const std::set<PageIndex> dirty(dirty_list.begin(), dirty_list.end());

    ExciseProcess(proc, [this, proc, dest_manager, dirty](ExciseResult excised) {
      MigrationRecord& rec = outbound_.at(proc->id().value);
      rec.excise_amap = excised.amap_time;
      rec.excise_rimas = excised.rimas_time;
      rec.excise_overall = excised.overall_time;
      rec.excise_done = env_->sim->Now();

      if (failure_handling_enabled()) {
        // A destination crash rolls the process back by re-inserting this
        // context locally, so it must hold the complete image — the staged
        // clean pages live at the (now dead) destination, not here. Stored
        // before the dirty filter strips them from the wire message.
        outbound_context_[proc->id().value] =
            OutboundContext{excised.core, excised.rimas};
      }

      // Keep only dirty pages in the Data regions; clean pages are staged.
      std::vector<MemoryRegion> kept;
      for (MemoryRegion& region : excised.rimas.regions) {
        if (region.mem_class != MemClass::kReal) {
          kept.push_back(std::move(region));
          continue;
        }
        const PageIndex first = PageOf(region.base);
        PageIndex i = 0;
        while (i < region.page_count()) {
          if (dirty.count(first + i) == 0) {
            ++i;
            continue;
          }
          const PageIndex run_start = i;
          std::vector<PageRef> data;
          while (i < region.page_count() && dirty.count(first + i) != 0) {
            data.push_back(std::move(region.pages[i]));
            ++i;
          }
          kept.push_back(
              MemoryRegion::Data(region.base + run_start * kPageSize, std::move(data)));
        }
      }
      excised.rimas.regions = std::move(kept);
      excised.rimas.no_ious = true;
      for (const MemoryRegion& region : excised.rimas.regions) {
        if (region.mem_class == MemClass::kReal) {
          rec.precopy_flash_bytes += region.size;
        }
      }
      RecordChainOrigin(proc->id(), dest_manager, excised.rimas);

      SendExcisedContext(proc->id(), dest_manager, std::move(excised));
    });
  });
}

void MigrationManager::HandleMessage(Message msg) {
  switch (msg.op) {
    case MsgOp::kMigrateCore: {
      // Command processing around the Core context (connection setup,
      // manager bookkeeping): the bulk of the paper's ~1 s Core transfer.
      auto shared = std::make_shared<Message>(std::move(msg));
      env_->cpu->Submit(CpuWork::kMigration, env_->costs->migration_control, [this, shared]() {
        const auto& body = shared->BodyAs<CoreBody>();
        PendingInsert& pending = pending_[body.proc.value];
        pending.core_arrived = env_->sim->Now();
        pending.reply_port = shared->reply_port;
        pending.core = std::move(*shared);
        pending.have_core = true;
        if (Tracer* tracer = env_->sim->tracer()) {
          tracer->Instant(env_->id, TraceLane::kMigration,
                          "migrate:core-arrived", pending.core_arrived,
                          {{"proc", Json(body.proc.value)}});
        }
        ArmPendingTimeout(body.proc, &pending);
        MaybeInsert(body.proc);
      });
      return;
    }
    case MsgOp::kMigrateRimas: {
      const auto& body = msg.BodyAs<RimasBody>();
      PendingInsert& pending = pending_[body.proc.value];
      pending.rimas_arrived = env_->sim->Now();
      pending.rimas = std::move(msg);
      pending.have_rimas = true;
      if (Tracer* tracer = env_->sim->tracer()) {
        tracer->Instant(env_->id, TraceLane::kMigration,
                        "migrate:rimas-arrived", pending.rimas_arrived,
                        {{"proc", Json(body.proc.value)}});
      }
      ArmPendingTimeout(body.proc, &pending);
      MaybeInsert(body.proc);
      return;
    }
    case MsgOp::kMigrateComplete: {
      const auto& body = msg.BodyAs<MigrateCompleteBody>();
      auto record_it = outbound_.find(body.proc.value);
      if (record_it == outbound_.end()) {
        // A completion for a migration this side already aborted: the
        // context got through after all and the process now runs on both
        // sides. The abort judged the peer unreachable for good and it
        // wasn't — log loudly; resolving the split brain needs an epoch
        // protocol out of scope here (see DESIGN.md failure semantics).
        ACCENT_LOG(kError) << "stray completion for " << body.proc
                           << " — peer inserted after this side aborted";
        return;
      }
      MigrationRecord record = record_it->second;
      record.core_arrived = body.core_arrived;
      record.rimas_arrived = body.rimas_arrived;
      record.insert_time = body.insert_time;
      record.resumed = body.resumed;
      outbound_.erase(record_it);
      outbound_context_.erase(body.proc.value);  // handshake done; drop the copy

      if (Tracer* tracer = env_->sim->tracer()) {
        // The three phase spans tile the downtime exactly: excise (emitted
        // when the context left) ends at excise_done, transfer runs to the
        // start of insertion, insert runs to resumption — so their durations
        // sum to record.Downtime(). Tests hold this invariant.
        const SimTime insert_begin = record.resumed - record.insert_time;
        tracer->Complete(env_->id, TraceLane::kMigration, "migrate:transfer",
                         record.excise_done, insert_begin - record.excise_done,
                         {{"proc", Json(record.proc.value)},
                          {"core_arrived_us", Json(record.core_arrived.count())},
                          {"rimas_arrived_us",
                           Json(record.rimas_arrived.count())}});
        tracer->Complete(env_->id, TraceLane::kMigration, "migrate:insert",
                         insert_begin, record.insert_time,
                         {{"proc", Json(record.proc.value)}});
        tracer->Instant(env_->id, TraceLane::kMigration, "migrate:complete",
                        env_->sim->Now(),
                        {{"proc", Json(record.proc.value)},
                         {"downtime_us", Json(record.Downtime().count())}});
      }

      auto done_it = done_.find(body.proc.value);
      ACCENT_CHECK(done_it != done_.end());
      MigrateDone done = std::move(done_it->second);
      done_.erase(done_it);
      // The process runs at the destination; if this excise found a remote
      // chain origin, evacuate our cached backing now (section 2.2's "until
      // all references die out" shortened to "until the chain collapses").
      StartChainCollapse(body.proc);
      done(record);
      return;
    }
    case MsgOp::kRebindIou: {
      // Destination side of a chain collapse: repoint the process's
      // stand-in segments from the evacuating intermediary at the origin.
      const auto& body = msg.BodyAs<RebindIouBody>();
      RebindAckBody ack;
      ack.proc = body.proc;
      ack.from = body.from;
      auto it = local_.find(body.proc.value);
      if (it != local_.end()) {
        ack.rebound = true;
        ack.segments_rebound = it->second->space()->RebindBackers(body.from, body.to);
        if (Tracer* tracer = env_->sim->tracer()) {
          tracer->Instant(env_->id, TraceLane::kMigration, "chain:rebound",
                          env_->sim->Now(),
                          {{"proc", Json(body.proc.value)},
                           {"segments", Json(ack.segments_rebound)},
                           {"to_segment", Json(body.to.segment.value)}});
        }
      }
      Message reply;
      reply.dest = body.reply_port;
      reply.op = MsgOp::kRebindAck;
      reply.traffic = TrafficKind::kControl;
      reply.inline_bytes = kRebindAckBodyBytes;
      reply.body = ack;
      Result<void> sent = env_->fabric->Send(env_->id, std::move(reply));
      ACCENT_CHECK(sent.ok()) << sent.error().message;
      return;
    }
    case MsgOp::kRebindAck: {
      // Intermediary side: the destination no longer references our cache
      // object — replace it with a forwarding stub and finish the collapse.
      const auto& body = msg.BodyAs<RebindAckBody>();
      auto it = chain_.find(body.proc.value);
      ACCENT_CHECK(it != chain_.end()) << " rebind ack for unknown chain " << body.proc;
      ChainState& state = it->second;
      --state.pending_rebinds;
      ++state.stats.rebinds_acked;
      state.stats.segments_rebound += body.segments_rebound;
      env_->netmsg->backer().RetireToStub(body.from.segment, state.origin);
      FinishCollapseIfDone(body.proc);
      return;
    }
    case MsgOp::kMigrateRequest: {
      const auto& body = msg.BodyAs<MigrateRequestBody>();
      auto it = local_.find(body.proc.value);
      ACCENT_CHECK(it != local_.end())
          << " migrate request for unknown local process " << body.proc;
      Migrate(it->second, body.dest_manager, body.strategy, [](const MigrationRecord&) {});
      return;
    }
    case MsgOp::kUser: {
      if (std::any_cast<PreCopyRoundBody>(&msg.body) != nullptr) {
        HandlePreCopyRound(std::move(msg));
        return;
      }
      if (const auto* ack = std::any_cast<PreCopyAckBody>(&msg.body)) {
        auto it = precopy_ack_waiters_.find(ack->proc.value);
        ACCENT_CHECK(it != precopy_ack_waiters_.end()) << " stray pre-copy ack";
        auto waiter = std::move(it->second);
        precopy_ack_waiters_.erase(it);
        waiter();
        return;
      }
      ACCENT_CHECK(false) << " manager received unrecognised user message";
      break;
    }
    default:
      ACCENT_CHECK(false) << " manager received unexpected " << MsgOpName(msg.op);
  }
}

void MigrationManager::HandlePreCopyRound(Message msg) {
  const auto& body = msg.BodyAs<PreCopyRoundBody>();
  std::map<PageIndex, PageRef>& staging = staged_[body.proc.value];
  for (MemoryRegion& region : msg.regions) {
    if (region.mem_class != MemClass::kReal) {
      continue;
    }
    const PageIndex first = PageOf(region.base);
    for (PageIndex i = 0; i < region.page_count(); ++i) {
      staging[first + i] = std::move(region.pages[i]);
    }
  }

  PreCopyAckBody ack;
  ack.proc = body.proc;
  ack.round = body.round;
  Message reply;
  reply.dest = body.reply_port;
  reply.op = MsgOp::kUser;
  reply.traffic = TrafficKind::kControl;
  reply.inline_bytes = 16;
  reply.body = ack;
  Result<void> sent = env_->fabric->Send(env_->id, std::move(reply));
  ACCENT_CHECK(sent.ok()) << sent.error().message;
}

void MigrationManager::MergeStagedPages(Message* rimas, ProcId proc) {
  auto it = staged_.find(proc.value);
  if (it == staged_.end()) {
    return;
  }
  std::map<PageIndex, PageRef> staging = std::move(it->second);
  staged_.erase(it);

  // Final-round RIMAS pages are fresher than staged ones.
  std::set<PageIndex> fresh;
  for (const MemoryRegion& region : rimas->regions) {
    if (region.mem_class != MemClass::kReal) {
      continue;
    }
    for (PageIndex i = 0; i < region.page_count(); ++i) {
      fresh.insert(PageOf(region.base) + i);
    }
  }

  auto cursor = staging.begin();
  while (cursor != staging.end()) {
    if (fresh.count(cursor->first) != 0) {
      ++cursor;
      continue;
    }
    // Collect a contiguous staged run.
    std::vector<PageRef> data;
    const PageIndex first = cursor->first;
    PageIndex expect = first;
    while (cursor != staging.end() && cursor->first == expect &&
           fresh.count(cursor->first) == 0) {
      data.push_back(std::move(cursor->second));
      ++cursor;
      ++expect;
    }
    rimas->regions.push_back(MemoryRegion::Data(PageBase(first), std::move(data)));
  }
}

void MigrationManager::MaybeInsert(ProcId proc) {
  auto it = pending_.find(proc.value);
  ACCENT_CHECK(it != pending_.end());
  if (!it->second.have_core || !it->second.have_rimas) {
    return;
  }
  PendingInsert pending = std::move(it->second);
  pending_.erase(it);
  MergeStagedPages(&pending.rimas, proc);

  InsertProcess(env_, std::move(pending.core), std::move(pending.rimas),
                [this, pending_core_arrived = pending.core_arrived,
                 pending_rimas_arrived = pending.rimas_arrived,
                 reply_port = pending.reply_port](std::unique_ptr<Process> process,
                                                  InsertResult result) {
                  Process* raw = process.get();
                  adopted_.push_back(std::move(process));
                  RegisterLocal(raw);
                  raw->Start();

                  MigrateCompleteBody body;
                  body.proc = raw->id();
                  body.core_arrived = pending_core_arrived;
                  body.rimas_arrived = pending_rimas_arrived;
                  body.insert_time = result.insert_time;
                  body.resumed = env_->sim->Now();

                  if (Tracer* tracer = env_->sim->tracer()) {
                    tracer->Instant(
                        env_->id, TraceLane::kMigration, "migrate:resumed",
                        body.resumed,
                        {{"proc", Json(body.proc.value)},
                         {"insert_us", Json(result.insert_time.count())}});
                  }

                  Message complete;
                  complete.dest = reply_port;
                  complete.op = MsgOp::kMigrateComplete;
                  complete.traffic = TrafficKind::kControl;
                  complete.inline_bytes = 64;
                  complete.body = body;
                  Result<void> sent = env_->fabric->Send(env_->id, std::move(complete));
                  ACCENT_CHECK(sent.ok()) << sent.error().message;

                  if (on_insert_ != nullptr) {
                    on_insert_(raw);
                  }
                });
}

}  // namespace accent
