// Discrete-event simulation kernel.
//
// All "concurrency" in the reproduced system — processes executing, pagers
// servicing faults, NetMsgServers shipping fragments, wires serialising
// bytes — is expressed as events on a priority queue ordered by simulated
// time. Events scheduled for the same instant run in FIFO order, which
// keeps trials deterministic.
//
// Two execution modes share this class:
//
//  * Serial (the default, and the only mode unless ConfigureShards() is
//    called): one global queue, exactly the original engine. Every
//    existing testbed, sweep and golden digest runs through this path
//    unchanged.
//
//  * Sharded (fleet-scale cluster trials): the queue is split into
//    per-shard queues, each owning a disjoint set of hosts, executed with
//    conservative time-window barriers (classic conservative parallel
//    discrete-event simulation). The only cross-shard edges are network
//    arrivals, and every link has a nonzero minimum latency L (the
//    lookahead), so each shard may safely run ahead to window_start + L
//    before exchanging cross-shard events at a barrier. Cross-shard events
//    travel through per-shard inboxes and are merged in a canonical order
//    — (arrival time, source host, per-source sequence) — so the executed
//    schedule, and therefore every simulation result, is bit-identical for
//    any shard count and any worker-thread count. Same-shard dispatch
//    keeps the InlineEvent fast path untouched.
//
// Hot-path notes: each queue is a binary heap laid out in a std::vector
// whose storage is reserved up front and retained across pops, and each
// event carries a small-buffer-optimised InlineEvent instead of a
// heap-allocated std::function, so steady-state scheduling performs no
// allocation. Sharding also shrinks each heap by the shard count, which
// cuts the per-event sift cost (O(log n/K)) — on a single core that, not
// thread parallelism, is where the cluster-trial speedup comes from.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/sim/event.h"
#include "src/trace/trace.h"

namespace accent {

class ThreadPool;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time: the executing shard's clock from inside an
  // event, the global window clock otherwise. The serial path is the
  // original single load.
  SimTime Now() const {
    if (shards_.empty()) {
      return now_;
    }
    return ShardedNow();
  }

  // Schedules `fn` at absolute simulated time `when` (>= Now()). Accepts any
  // void() callable; small captures are stored inline (see event.h). In
  // sharded mode this must be called from inside an executing event and
  // lands on the calling shard (the same-host fast path); use
  // ScheduleAtHost for setup-time scheduling.
  void ScheduleAt(SimTime when, InlineEvent fn);

  // Schedules `fn` after `delay` of simulated time.
  void ScheduleAfter(SimDuration delay, InlineEvent fn) {
    ScheduleAt(Now() + delay, std::move(fn));
  }

  // --- sharded mode ------------------------------------------------------
  // Splits the event loop into `shards` queues with conservative windows of
  // `lookahead` (must be <= the minimum cross-host link latency). Call once,
  // before any event is scheduled. shards == 1 still switches to the
  // windowed engine — that is the cluster baseline — but the classic serial
  // loop is used whenever ConfigureShards was never called.
  void ConfigureShards(int shards, SimDuration lookahead);

  // Caps the worker threads executing shard windows. 0 (default) picks
  // min(shard_count, hardware threads); 1 runs shards inline on the
  // caller's thread with zero pool machinery.
  void set_shard_threads(int threads);

  // Maps a host onto a shard (0 <= shard < shard_count). Every host that
  // schedules or receives cross-host events must be assigned before Run.
  void AssignHostShard(HostId host, int shard);

  // Setup-time scheduling onto `host`'s shard. Must not be called while a
  // shard window is executing (events self-schedule with ScheduleAt).
  void ScheduleAtHost(HostId host, SimTime when, InlineEvent fn);

  // Cross-host event edge (network arrivals). In serial mode this is
  // ScheduleAt. In sharded mode the event lands in the destination shard's
  // inbox and is merged at the next barrier in canonical order — callers
  // must guarantee when >= Now() + lookahead, which a wire latency >=
  // lookahead provides by construction.
  void ScheduleCross(HostId from, HostId to, SimTime when, InlineEvent fn);

  bool sharded() const { return !shards_.empty(); }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  SimDuration lookahead() const { return lookahead_; }
  int shard_of_host(HostId host) const;

  // ------------------------------------------------------------------------

  // Runs until the event queue(s) drain or Stop() is called. Returns the
  // number of events executed.
  std::uint64_t Run();

  // Runs until `deadline`; events at exactly `deadline` are executed.
  // Returns true if the queue(s) drained before the deadline.
  bool RunUntil(SimTime deadline);

  // Makes Run() return after the current event completes (serial mode) or
  // at the next window barrier (sharded mode).
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

  bool empty() const {
    if (shards_.empty()) {
      return queue_.empty();
    }
    return pending_events() == 0;
  }

  // Pending events across the serial queue, every shard queue and every
  // cross-shard inbox, so watchdogs see the whole fleet: a hung shard must
  // still trip the guard.
  std::size_t pending_events() const;

  // Pending events per shard (queue + inbox), index-aligned with shard ids.
  // Empty in serial mode. Diagnostic surface for watchdog dumps.
  std::vector<std::size_t> PendingEventsByShard() const;

  // Scheduled times of up to `limit` earliest pending events, ascending,
  // merged across all shards and inboxes. Diagnostic surface for
  // watchdogs: a stuck simulation dumps what it was still waiting on
  // instead of timing out silently.
  std::vector<SimTime> PendingEventTimes(std::size_t limit) const;

  std::uint64_t events_executed() const;

  // Process/port/segment id allocator (ids are unique per simulation).
  // Serial-mode (and setup-time) only: allocation order from concurrent
  // shards would leak scheduling nondeterminism into ids.
  std::uint64_t AllocateId() { return ++last_id_; }

  // Optional observability hook. The simulator does not own the tracer;
  // callers must keep it alive for the simulation's lifetime. Instrumented
  // subsystems reach it through here (sim.tracer()), so one assignment
  // enables tracing everywhere. Null (the default) disables all recording.
  // Sharded runs accept a tracer only with a single worker thread (the
  // recorder is not thread-safe); the schedule is identical either way.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  static constexpr std::size_t kInitialQueueCapacity = 1024;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    InlineEvent fn;
  };
  // Heap comparator: the "largest" element (heap top) is the earliest event;
  // ties broken by sequence number for same-instant FIFO order.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // A cross-shard event parked in the destination shard's inbox until the
  // next barrier. The (when, src_host, src_seq) key is the canonical merge
  // order: it depends only on each source host's own execution history,
  // never on shard layout or thread interleaving.
  struct CrossEvent {
    SimTime when;
    std::uint64_t src_host;
    std::uint64_t src_seq;
    InlineEvent fn;
  };

  // Shards are cache-line-aligned so two workers never share a line.
  struct alignas(64) Shard {
    std::vector<Event> queue;  // binary heap, same discipline as queue_
    SimTime now{0};
    std::uint64_t next_seq = 0;
    // Relaxed atomic so watchdog events on one shard may read the global
    // events_executed() while other shards are mid-window.
    std::atomic<std::uint64_t> executed{0};
    std::mutex inbox_mu;
    std::vector<CrossEvent> inbox;
  };

  struct HostSlot {
    int shard = 0;
    std::size_t index = 0;  // dense index into host_send_seq_
  };

  void RunOne();
  SimTime ShardedNow() const;
  bool RunWindowed(bool bounded, SimTime deadline);
  void RunShardWindow(Shard* shard, SimTime end_exclusive);
  void DrainInbox(Shard* shard);
  const HostSlot& SlotOf(HostId host) const;
  int ShardWorkers() const;

  // The shard whose window the calling thread is executing (null outside
  // window execution). Guarded by tls_sim_ so nested simulators in one
  // process never cross wires.
  static thread_local Simulator* tls_sim_;
  static thread_local Shard* tls_shard_;

  // Binary heap over queue_ (std::push_heap/pop_heap with EventLater).
  std::vector<Event> queue_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_id_ = 0;
  std::uint64_t events_executed_ = 0;
  std::atomic<bool> stopped_{false};
  Tracer* tracer_ = nullptr;  // not owned

  // Sharded mode (empty vectors/maps in serial mode).
  std::vector<std::unique_ptr<Shard>> shards_;
  SimDuration lookahead_{0};
  int shard_threads_ = 0;  // 0 = auto
  std::unordered_map<std::uint64_t, HostSlot> host_slots_;
  // Per-source-host cross-send counters; written only by the owning shard.
  std::vector<std::uint64_t> host_send_seq_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<CrossEvent> drain_scratch_;
};

}  // namespace accent

#endif  // SRC_SIM_SIMULATOR_H_
