// Discrete-event simulation kernel.
//
// All "concurrency" in the reproduced system — processes executing, pagers
// servicing faults, NetMsgServers shipping fragments, wires serialising
// bytes — is expressed as events on a single priority queue ordered by
// simulated time. Events scheduled for the same instant run in FIFO order,
// which keeps trials deterministic.
//
// Hot-path notes: the queue is a binary heap laid out in a std::vector whose
// storage is reserved up front and retained across pops, and each event
// carries a small-buffer-optimised InlineEvent instead of a heap-allocated
// std::function, so steady-state scheduling performs no allocation.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/sim/event.h"
#include "src/trace/trace.h"

namespace accent {

class Simulator {
 public:
  Simulator() { queue_.reserve(kInitialQueueCapacity); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute simulated time `when` (>= Now()). Accepts any
  // void() callable; small captures are stored inline (see event.h).
  void ScheduleAt(SimTime when, InlineEvent fn);

  // Schedules `fn` after `delay` of simulated time.
  void ScheduleAfter(SimDuration delay, InlineEvent fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs until the event queue drains or Stop() is called. Returns the
  // number of events executed.
  std::uint64_t Run();

  // Runs until `deadline`; events at exactly `deadline` are executed.
  // Returns true if the queue drained before the deadline.
  bool RunUntil(SimTime deadline);

  // Makes Run() return after the current event completes.
  void Stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  // Scheduled times of up to `limit` earliest pending events, ascending.
  // Diagnostic surface for watchdogs: a stuck simulation dumps what it was
  // still waiting on instead of timing out silently.
  std::vector<SimTime> PendingEventTimes(std::size_t limit) const;

  std::uint64_t events_executed() const { return events_executed_; }

  // Process/port/segment id allocator (ids are unique per simulation).
  std::uint64_t AllocateId() { return ++last_id_; }

  // Optional observability hook. The simulator does not own the tracer;
  // callers must keep it alive for the simulation's lifetime. Instrumented
  // subsystems reach it through here (sim.tracer()), so one assignment
  // enables tracing everywhere. Null (the default) disables all recording.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  static constexpr std::size_t kInitialQueueCapacity = 1024;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    InlineEvent fn;
  };
  // Heap comparator: the "largest" element (heap top) is the earliest event;
  // ties broken by sequence number for same-instant FIFO order.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void RunOne();

  // Binary heap over queue_ (std::push_heap/pop_heap with EventLater).
  std::vector<Event> queue_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_id_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stopped_ = false;
  Tracer* tracer_ = nullptr;  // not owned
};

}  // namespace accent

#endif  // SRC_SIM_SIMULATOR_H_
