// Discrete-event simulation kernel.
//
// All "concurrency" in the reproduced system — processes executing, pagers
// servicing faults, NetMsgServers shipping fragments, wires serialising
// bytes — is expressed as events on a single priority queue ordered by
// simulated time. Events scheduled for the same instant run in FIFO order,
// which keeps trials deterministic.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute simulated time `when` (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` after `delay` of simulated time.
  void ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs until the event queue drains or Stop() is called. Returns the
  // number of events executed.
  std::uint64_t Run();

  // Runs until `deadline`; events at exactly `deadline` are executed.
  // Returns true if the queue drained before the deadline.
  bool RunUntil(SimTime deadline);

  // Makes Run() return after the current event completes.
  void Stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_executed() const { return events_executed_; }

  // Process/port/segment id allocator (ids are unique per simulation).
  std::uint64_t AllocateId() { return ++last_id_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void RunOne();

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_id_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stopped_ = false;
};

}  // namespace accent

#endif  // SRC_SIM_SIMULATOR_H_
