// Small-buffer-optimised event callable for the simulator hot path.
//
// Every scheduled event used to carry a heap-allocated std::function. Event
// callbacks are almost always small lambdas (a couple of captured pointers
// plus a byte count), so InlineEvent stores callables of up to
// kInlineCapacity bytes directly inside the event record and only falls back
// to the heap for oversized or throwing-move captures. Move-only captures
// (e.g. a std::unique_ptr riding along with a message) are supported;
// copying is not, because events are consumed exactly once.
#ifndef SRC_SIM_EVENT_H_
#define SRC_SIM_EVENT_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/base/check.h"

namespace accent {

class InlineEvent {
 public:
  // Sized so the simulator's Event record (when + seq + InlineEvent) is
  // exactly one 64-byte cache line: 40 bytes of storage + the ops pointer.
  // This covers the hot capture shapes — notably Cpu::StartNext's
  // [this, done = std::function] completion wrapper (40 bytes), which
  // std::function itself would heap-allocate (its SBO tops out at 16).
  static constexpr std::size_t kInlineCapacity = 40;

  InlineEvent() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(other);
    }
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(other);
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    ACCENT_EXPECTS(ops_ != nullptr) << " invoking an empty InlineEvent";
    ops_->invoke(storage_);
  }

 private:
  // Null relocate/destroy entries mark trivial operations, letting the move
  // path (run once per heap sift step — the hottest code in the simulator)
  // stay a branch plus a fixed-size memcpy instead of an indirect call.
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *dst from *src and destroys *src; null when a raw
    // storage memcpy is equivalent (trivially copyable + destructible
    // capture, or the heap case where storage holds only a pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    // Null when destruction is a no-op.
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static constexpr bool kTrivialRelocate =
        std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
    static void Invoke(void* self) { (*static_cast<D*>(self))(); }
    static void Relocate(void* dst, void* src) noexcept {
      D* from = static_cast<D*>(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void Destroy(void* self) noexcept { static_cast<D*>(self)->~D(); }
    static constexpr Ops kOps{&Invoke, kTrivialRelocate ? nullptr : &Relocate,
                              std::is_trivially_destructible_v<D> ? nullptr : &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static void Invoke(void* self) { (**static_cast<D**>(self))(); }
    static void Destroy(void* self) noexcept { delete *static_cast<D**>(self); }
    // Relocation only moves the owning pointer: memcpy-able.
    static constexpr Ops kOps{&Invoke, nullptr, &Destroy};
  };

  void Relocate(InlineEvent& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineCapacity);
    }
    other.ops_ = nullptr;
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace accent

#endif  // SRC_SIM_EVENT_H_
