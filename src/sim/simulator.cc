#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/base/thread_pool.h"

namespace accent {

thread_local Simulator* Simulator::tls_sim_ = nullptr;
thread_local Simulator::Shard* Simulator::tls_shard_ = nullptr;

namespace {
constexpr SimTime kNoEvent = SimTime::max();
}  // namespace

Simulator::Simulator() { queue_.reserve(kInitialQueueCapacity); }

Simulator::~Simulator() = default;

SimTime Simulator::ShardedNow() const {
  if (tls_sim_ == this && tls_shard_ != nullptr) {
    return tls_shard_->now;
  }
  return now_;
}

void Simulator::ScheduleAt(SimTime when, InlineEvent fn) {
  ACCENT_CHECK(static_cast<bool>(fn)) << " scheduling an empty event";
  if (!shards_.empty()) {
    // Sharded mode: land on the executing shard — the same-host fast path.
    // Setup-time code must name its host via ScheduleAtHost instead.
    ACCENT_CHECK(tls_sim_ == this && tls_shard_ != nullptr)
        << " sharded ScheduleAt outside event execution; use ScheduleAtHost";
    Shard& shard = *tls_shard_;
    ACCENT_CHECK(when >= shard.now)
        << " scheduling into the past: when=" << when.count() << "us now="
        << shard.now.count() << "us";
    shard.queue.push_back(Event{when, shard.next_seq++, std::move(fn)});
    std::push_heap(shard.queue.begin(), shard.queue.end(), EventLater{});
    return;
  }
  ACCENT_CHECK(when >= now_) << " scheduling into the past: when=" << when.count()
                             << "us now=" << now_.count() << "us";
  queue_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void Simulator::ConfigureShards(int shards, SimDuration lookahead) {
  ACCENT_EXPECTS(shards >= 1);
  ACCENT_EXPECTS(lookahead > SimDuration::zero())
      << " conservative windows need a positive lookahead";
  ACCENT_CHECK(shards_.empty()) << " ConfigureShards called twice";
  ACCENT_CHECK(queue_.empty() && events_executed_ == 0)
      << " configure shards before any event is scheduled or run";
  lookahead_ = lookahead;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->queue.reserve(kInitialQueueCapacity);
    shards_.push_back(std::move(shard));
  }
}

void Simulator::set_shard_threads(int threads) {
  ACCENT_EXPECTS(threads >= 0);
  ACCENT_CHECK(pool_ == nullptr) << " worker pool already started";
  shard_threads_ = threads;
}

int Simulator::ShardWorkers() const {
  if (shard_threads_ > 0) {
    return std::min(shard_threads_, shard_count());
  }
  return std::min(ThreadPool::HardwareThreads(), shard_count());
}

void Simulator::AssignHostShard(HostId host, int shard) {
  ACCENT_EXPECTS(host.valid());
  ACCENT_CHECK(!shards_.empty()) << " ConfigureShards first";
  ACCENT_CHECK(shard >= 0 && shard < shard_count())
      << " shard " << shard << " out of range";
  ACCENT_CHECK(tls_sim_ != this) << " host assignment during window execution";
  auto [it, inserted] =
      host_slots_.emplace(host.value, HostSlot{shard, host_send_seq_.size()});
  ACCENT_CHECK(inserted) << " host " << host << " assigned twice";
  (void)it;
  host_send_seq_.push_back(0);
}

const Simulator::HostSlot& Simulator::SlotOf(HostId host) const {
  auto it = host_slots_.find(host.value);
  ACCENT_CHECK(it != host_slots_.end()) << " host " << host << " has no shard";
  return it->second;
}

int Simulator::shard_of_host(HostId host) const { return SlotOf(host).shard; }

void Simulator::ScheduleAtHost(HostId host, SimTime when, InlineEvent fn) {
  ACCENT_CHECK(static_cast<bool>(fn)) << " scheduling an empty event";
  if (shards_.empty()) {
    ScheduleAt(when, std::move(fn));
    return;
  }
  ACCENT_CHECK(tls_sim_ != this)
      << " ScheduleAtHost during window execution; events self-schedule with "
         "ScheduleAt and reach peers through ScheduleCross";
  Shard& shard = *shards_[static_cast<std::size_t>(SlotOf(host).shard)];
  ACCENT_CHECK(when >= shard.now) << " scheduling into the past";
  shard.queue.push_back(Event{when, shard.next_seq++, std::move(fn)});
  std::push_heap(shard.queue.begin(), shard.queue.end(), EventLater{});
}

void Simulator::ScheduleCross(HostId from, HostId to, SimTime when, InlineEvent fn) {
  ACCENT_CHECK(static_cast<bool>(fn)) << " scheduling an empty event";
  if (shards_.empty()) {
    ScheduleAt(when, std::move(fn));
    return;
  }
  const HostSlot& src = SlotOf(from);
  const HostSlot& dst = SlotOf(to);
  if (tls_sim_ == this && tls_shard_ != nullptr) {
    // The conservative-window safety contract: an in-window send may not
    // arrive before the next barrier, or the destination shard could have
    // run past it. Wire latencies >= lookahead guarantee this.
    ACCENT_CHECK(when >= tls_shard_->now + lookahead_)
        << " cross-shard event inside the lookahead window: when="
        << when.count() << "us now=" << tls_shard_->now.count()
        << "us lookahead=" << lookahead_.count() << "us";
    ACCENT_CHECK(shards_[static_cast<std::size_t>(src.shard)].get() == tls_shard_)
        << " cross-shard send from host " << from
        << " outside its owning shard";
  }
  // The canonical merge key. The per-source counter is written only by the
  // source host's shard (or the setup thread), so no lock is needed here.
  const std::uint64_t src_seq = host_send_seq_[src.index]++;
  Shard& target = *shards_[static_cast<std::size_t>(dst.shard)];
  {
    std::lock_guard<std::mutex> lock(target.inbox_mu);
    target.inbox.push_back(CrossEvent{when, from.value, src_seq, std::move(fn)});
  }
}

void Simulator::RunOne() {
  // The event must be popped before running: the callback may schedule.
  std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
  Event event = std::move(queue_.back());
  queue_.pop_back();
  now_ = event.when;
  ++events_executed_;
  // Dispatch instants are high-volume, so they are gated behind verbose
  // mode on top of the usual null check; the common path costs one branch.
  if (tracer_ != nullptr && tracer_->verbose()) {
    tracer_->KernelInstant("sim:dispatch", now_,
                           {{"seq", Json(event.seq)},
                            {"pending", Json(static_cast<std::uint64_t>(
                                            queue_.size()))}});
  }
  event.fn();
}

void Simulator::RunShardWindow(Shard* shard, SimTime end_exclusive) {
  tls_sim_ = this;
  tls_shard_ = shard;
  std::vector<Event>& queue = shard->queue;
  while (!queue.empty() && queue.front().when < end_exclusive &&
         !stopped_.load(std::memory_order_relaxed)) {
    std::pop_heap(queue.begin(), queue.end(), EventLater{});
    Event event = std::move(queue.back());
    queue.pop_back();
    shard->now = event.when;
    shard->executed.fetch_add(1, std::memory_order_relaxed);
    event.fn();
  }
  tls_shard_ = nullptr;
  tls_sim_ = nullptr;
}

void Simulator::DrainInbox(Shard* shard) {
  drain_scratch_.clear();
  {
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    drain_scratch_.swap(shard->inbox);
  }
  // Canonical merge order: arrival time, then source host, then the
  // source's own send order. This depends only on each host's execution
  // history, so the merged schedule is identical for every shard count and
  // worker count — the determinism contract of the whole engine.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const CrossEvent& a, const CrossEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src_host != b.src_host) return a.src_host < b.src_host;
              return a.src_seq < b.src_seq;
            });
  for (CrossEvent& cross : drain_scratch_) {
    ACCENT_CHECK(cross.when >= shard->now)
        << " cross-shard event arrived in this shard's past (lookahead too "
           "large for the link latency?)";
    shard->queue.push_back(Event{cross.when, shard->next_seq++, std::move(cross.fn)});
    std::push_heap(shard->queue.begin(), shard->queue.end(), EventLater{});
  }
  drain_scratch_.clear();
}

bool Simulator::RunWindowed(bool bounded, SimTime deadline) {
  ACCENT_CHECK(tls_sim_ == nullptr) << " nested sharded runs on one thread";
  stopped_.store(false, std::memory_order_relaxed);
  const int workers = ShardWorkers();
  ACCENT_CHECK(tracer_ == nullptr || workers == 1)
      << " tracing a sharded run needs a single worker (set_shard_threads(1))";
  if (workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  for (;;) {
    for (auto& shard : shards_) {
      DrainInbox(shard.get());
    }
    SimTime next = kNoEvent;
    for (auto& shard : shards_) {
      if (!shard->queue.empty() && shard->queue.front().when < next) {
        next = shard->queue.front().when;
      }
    }
    if (next == kNoEvent) {
      if (bounded) {
        if (now_ < deadline) {
          now_ = deadline;
        }
      } else {
        for (const auto& shard : shards_) {
          now_ = std::max(now_, shard->now);
        }
      }
      return true;  // drained
    }
    if (bounded && next > deadline) {
      now_ = deadline;
      return false;
    }
    now_ = next;
    SimTime end = next + lookahead_;
    if (bounded && end > deadline) {
      // Events at exactly `deadline` still run (end bound is exclusive).
      end = deadline + SimDuration{1};
    }
    if (tracer_ != nullptr && tracer_->verbose()) {
      tracer_->KernelInstant(
          "shard:window", now_,
          {{"end_us", Json(end.count())},
           {"shards", Json(static_cast<std::uint64_t>(shards_.size()))}});
    }
    if (workers == 1) {
      for (auto& shard : shards_) {
        if (!shard->queue.empty() && shard->queue.front().when < end) {
          RunShardWindow(shard.get(), end);
        }
      }
    } else {
      for (auto& shard : shards_) {
        if (!shard->queue.empty() && shard->queue.front().when < end) {
          Shard* raw = shard.get();
          pool_->Submit([this, raw, end]() { RunShardWindow(raw, end); });
        }
      }
      pool_->Wait();
    }
    if (stopped_.load(std::memory_order_relaxed)) {
      return pending_events() == 0;
    }
  }
}

std::uint64_t Simulator::Run() {
  const std::uint64_t start = events_executed();
  if (!shards_.empty()) {
    RunWindowed(/*bounded=*/false, SimTime{0});
    return events_executed() - start;
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!queue_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    RunOne();
  }
  return events_executed_ - start;
}

bool Simulator::RunUntil(SimTime deadline) {
  if (!shards_.empty()) {
    return RunWindowed(/*bounded=*/true, deadline);
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!queue_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    if (queue_.front().when > deadline) {
      now_ = deadline;
      return false;
    }
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return queue_.empty();
}

std::size_t Simulator::pending_events() const {
  std::size_t pending = queue_.size();
  for (const auto& shard : shards_) {
    pending += shard->queue.size();
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    pending += shard->inbox.size();
  }
  return pending;
}

std::vector<std::size_t> Simulator::PendingEventsByShard() const {
  std::vector<std::size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    counts.push_back(shard->queue.size() + shard->inbox.size());
  }
  return counts;
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = events_executed_;
  for (const auto& shard : shards_) {
    total += shard->executed.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<SimTime> Simulator::PendingEventTimes(std::size_t limit) const {
  std::vector<SimTime> times;
  times.reserve(pending_events());
  for (const Event& event : queue_) {
    times.push_back(event.when);
  }
  for (const auto& shard : shards_) {
    for (const Event& event : shard->queue) {
      times.push_back(event.when);
    }
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    for (const CrossEvent& cross : shard->inbox) {
      times.push_back(cross.when);
    }
  }
  std::sort(times.begin(), times.end());
  if (times.size() > limit) {
    times.resize(limit);
  }
  return times;
}

}  // namespace accent
