#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace accent {

void Simulator::ScheduleAt(SimTime when, InlineEvent fn) {
  ACCENT_CHECK(when >= now_) << " scheduling into the past: when=" << when.count()
                             << "us now=" << now_.count() << "us";
  ACCENT_CHECK(static_cast<bool>(fn)) << " scheduling an empty event";
  queue_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void Simulator::RunOne() {
  // The event must be popped before running: the callback may schedule.
  std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
  Event event = std::move(queue_.back());
  queue_.pop_back();
  now_ = event.when;
  ++events_executed_;
  // Dispatch instants are high-volume, so they are gated behind verbose
  // mode on top of the usual null check; the common path costs one branch.
  if (tracer_ != nullptr && tracer_->verbose()) {
    tracer_->KernelInstant("sim:dispatch", now_,
                           {{"seq", Json(event.seq)},
                            {"pending", Json(static_cast<std::uint64_t>(
                                            queue_.size()))}});
  }
  event.fn();
}

std::uint64_t Simulator::Run() {
  stopped_ = false;
  const std::uint64_t start = events_executed_;
  while (!queue_.empty() && !stopped_) {
    RunOne();
  }
  return events_executed_ - start;
}

std::vector<SimTime> Simulator::PendingEventTimes(std::size_t limit) const {
  std::vector<SimTime> times;
  times.reserve(queue_.size());
  for (const Event& event : queue_) {
    times.push_back(event.when);
  }
  std::sort(times.begin(), times.end());
  if (times.size() > limit) {
    times.resize(limit);
  }
  return times;
}

bool Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.front().when > deadline) {
      now_ = deadline;
      return false;
    }
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return queue_.empty();
}

}  // namespace accent
