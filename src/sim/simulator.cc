#include "src/sim/simulator.h"

#include <utility>

namespace accent {

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  ACCENT_EXPECTS(when >= now_) << " scheduling into the past: when=" << when.count()
                               << "us now=" << now_.count() << "us";
  ACCENT_EXPECTS(fn != nullptr);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::RunOne() {
  // The event must be popped before running: the callback may schedule.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  ++events_executed_;
  event.fn();
}

std::uint64_t Simulator::Run() {
  stopped_ = false;
  const std::uint64_t start = events_executed_;
  while (!queue_.empty() && !stopped_) {
    RunOne();
  }
  return events_executed_ - start;
}

bool Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().when > deadline) {
      now_ = deadline;
      return false;
    }
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return queue_.empty();
}

}  // namespace accent
